"""Deterministic seed-parameterised random-program generation.

:class:`SyntheticParameters` spans the knobs the fuzz lane sweeps — nest
depth, trip counts, stride/gather density, dependence-chain length, the
scalar/µSIMD/vector mix and the memory footprint — and
:func:`generate_spec` expands one parameter set into a
:class:`~repro.workloads.synthetic.spec.ProgramSpec` using nothing but
``random.Random(seed)``, so the same seed yields a byte-identical spec
(and therefore the same compile fingerprint and store key) in every
process and on every platform.

:func:`params_for_seed` is the fuzz driver's meta-generator: it derives a
*whole parameter set* from one sweep seed, so a seed sweep explores the
knob space too, not just one slice of it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.workloads.synthetic.spec import (
    LoopSpec,
    ProgramSpec,
    Statement,
    build_program,
)

__all__ = [
    "SyntheticParameters",
    "generate_spec",
    "build_synthetic_program",
    "params_for_seed",
]

_TRIP_DEGENERATE = (0, 1)
_VL_CHOICES = (2, 4, 8, 16)
_STRIDE_CHOICES = (16, 24, 32, 64)
_COEF_FACTORS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class SyntheticParameters:
    """Input geometry of one synthetic program (the registry family)."""

    #: Every structural decision derives from this seed alone.
    seed: int = 0
    #: Maximum loop-nest depth.
    depth: int = 3
    #: Statement budget (leaf count of the generated tree).
    statements: int = 12
    #: Trip-count range for non-degenerate loops.
    min_trip: int = 1
    max_trip: int = 8
    #: Fraction of vector accesses with a non-unit stride.
    stride_density: float = 0.25
    #: Fraction of accesses with data-dependent (wrapped) addresses.
    gather_density: float = 0.15
    #: Maximum dependence-chain / compute-block length.
    chain_length: int = 6
    #: ISA mix weights for scalar / packed (µSIMD) / vector statements.
    scalar_weight: int = 1
    packed_weight: int = 2
    vector_weight: int = 2
    #: Total array footprint.
    footprint_kb: int = 16
    #: Fraction of loops forced degenerate (zero or single trip).
    degenerate_density: float = 0.1

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        if not 1 <= self.depth <= 8:
            raise ValueError("depth must be in 1..8")
        if self.statements < 1:
            raise ValueError("the statement budget must be positive")
        if not 0 <= self.min_trip <= self.max_trip:
            raise ValueError("need 0 <= min_trip <= max_trip")
        for name in ("stride_density", "gather_density", "degenerate_density"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.chain_length < 1:
            raise ValueError("chain_length must be positive")
        weights = (self.scalar_weight, self.packed_weight, self.vector_weight)
        if min(weights) < 0 or sum(weights) == 0:
            raise ValueError("ISA mix weights must be >= 0 and not all zero")
        if self.footprint_kb < 1:
            raise ValueError("footprint_kb must be positive")


def generate_spec(params: SyntheticParameters) -> ProgramSpec:
    """Expand ``params`` into its program spec (pure function of the seed)."""
    rng = random.Random(params.seed)
    n_arrays = 2 + rng.randrange(3)
    size = max(256, ((params.footprint_kb * 1024) // n_arrays) & ~63)
    arrays = tuple((f"buf{index}", size) for index in range(n_arrays))
    units = (("scalar",) * params.scalar_weight
             + ("packed",) * params.packed_weight
             + ("vector",) * params.vector_weight)
    budget = [params.statements]
    labels = [0]

    def pick_trip() -> int:
        if rng.random() < params.degenerate_density:
            return rng.choice(_TRIP_DEGENERATE)
        if params.max_trip == params.min_trip:
            return params.min_trip
        return rng.randrange(params.min_trip, params.max_trip + 1)

    def gen_statement(depth: int) -> Statement:
        unit = rng.choice(units)
        region = ("R0" if unit == "scalar" and rng.random() < 0.6
                  else rng.choice(("R1", "R2")))
        if rng.random() < 0.6:
            array = rng.randrange(n_arrays)
            coefs = tuple(
                (8 * rng.choice(_COEF_FACTORS) if rng.random() < 0.75 else 0)
                for _ in range(depth))
            stride = (rng.choice(_STRIDE_CHOICES)
                      if rng.random() < params.stride_density else 8)
            return Statement(
                kind="mem", unit=unit, region=region, array=array,
                offset=8 * rng.randrange(size // 8),
                coefs=coefs,
                store=rng.random() < 0.35,
                wrap=size if rng.random() < params.gather_density else 0,
                vl=rng.choice(_VL_CHOICES), stride=stride)
        return Statement(
            kind="compute", unit=unit, region=region,
            length=1 + rng.randrange(params.chain_length),
            dependent=rng.random() < 0.7,
            vl=rng.choice(_VL_CHOICES))

    def gen_body(depth: int) -> Tuple:
        nodes = []
        while budget[0] > 0:
            if depth < params.depth and rng.random() < 0.35:
                labels[0] += 1
                label = f"L{labels[0]}"
                nodes.append(LoopSpec(trip=pick_trip(), label=label,
                                      body=gen_body(depth + 1)))
            else:
                budget[0] -= 1
                nodes.append(gen_statement(depth))
            if depth > 0 and rng.random() < 0.3:
                break
        return tuple(nodes)

    return ProgramSpec(name=f"synthetic_s{params.seed}", arrays=arrays,
                       body=gen_body(0))


def build_synthetic_program(flavor: ISAFlavor,
                            params: SyntheticParameters) -> KernelProgram:
    """The registered builder: generate the spec and lower it to IR."""
    return build_program(generate_spec(params), flavor)


def params_for_seed(seed: int, scale: str = "tiny") -> SyntheticParameters:
    """Derive a whole knob configuration from one fuzz-sweep seed.

    ``scale`` bounds the program size: ``"tiny"`` keeps a full
    three-flavour comparison in the low milliseconds (the tier-1 sweep),
    ``"default"`` generates report-sized programs for the slow lane.
    """
    rng = random.Random(f"synthetic-sweep:{seed}")
    if scale == "tiny":
        statements = 3 + rng.randrange(8)
        depth = 1 + rng.randrange(3)
        max_trip = 2 + rng.randrange(5)
        footprint = 2
    elif scale == "default":
        statements = 8 + rng.randrange(25)
        depth = 1 + rng.randrange(4)
        max_trip = 4 + rng.randrange(29)
        footprint = 8 * (1 + rng.randrange(8))
    else:
        raise ValueError(f"unknown fuzz scale {scale!r} "
                         f"(choose 'tiny' or 'default')")
    weights = rng.choice(((1, 1, 1), (1, 2, 2), (2, 1, 1),
                          (0, 1, 2), (1, 0, 2), (1, 2, 0)))
    return SyntheticParameters(
        seed=seed, depth=depth, statements=statements,
        min_trip=0, max_trip=max_trip,
        stride_density=rng.choice((0.0, 0.25, 0.5, 1.0)),
        gather_density=rng.choice((0.0, 0.2, 0.5)),
        chain_length=1 + rng.randrange(8),
        scalar_weight=weights[0], packed_weight=weights[1],
        vector_weight=weights[2],
        footprint_kb=footprint,
        degenerate_density=rng.choice((0.0, 0.15, 0.4)))
