"""Seed-derived functional references for the synthetic family.

Like every shipped kernel, a synthetic workload carries a NumPy functional
reference computed three ways — plain NumPy, packed µSIMD emulation and
vector emulation — that must agree bit for bit.  The payload (an int16
stream and a pipeline of packed-arithmetic steps) derives from the same
``SyntheticParameters`` seed as the timing program, so checking the trio
for a given parameter set pins the generator's data side exactly like
``fir_bank_reference``/``fir_bank_usimd``/``fir_bank_vector`` pin FIR's.
"""

from __future__ import annotations

import random
from typing import Tuple

import numpy as np

from repro.isa import packed, vectorops
from repro.workloads.synthetic.generator import SyntheticParameters

__all__ = [
    "synthetic_payload",
    "synthetic_reference",
    "synthetic_usimd",
    "synthetic_vector",
]

#: Packed 16-bit pipeline steps the payload draws from; the two shifts
#: take an immediate count, the rest a broadcast int16 operand.
PIPELINE_OPS = ("paddw", "psubw", "pmullw", "pminsw", "pmaxsw",
                "psllw", "psraw")
_SHIFT_OPS = ("psllw", "psraw")


def synthetic_payload(params: SyntheticParameters
                      ) -> Tuple[np.ndarray, Tuple[Tuple[str, int], ...]]:
    """The seed-derived data stream and op pipeline all flavours share."""
    rng = random.Random(f"synthetic-data:{params.seed}")
    words = max(16, min(256, (params.footprint_kb * 1024) // 64))
    count = words * packed.LANES_16
    data = np.array([rng.randrange(-32768, 32768) for _ in range(count)],
                    dtype=np.int16)
    pipeline = []
    for _ in range(max(1, params.chain_length)):
        name = rng.choice(PIPELINE_OPS)
        operand = (rng.randrange(1, 8) if name in _SHIFT_OPS
                   else rng.randrange(-32768, 32768))
        pipeline.append((name, operand))
    return data, tuple(pipeline)


def synthetic_reference(params: SyntheticParameters) -> np.ndarray:
    """Reference pipeline: flat NumPy int16 with explicit wrap-around."""
    data, pipeline = synthetic_payload(params)
    x = data.astype(np.int16)
    for name, operand in pipeline:
        if name == "paddw":
            x = _wrap16(x.astype(np.int32) + operand)
        elif name == "psubw":
            x = _wrap16(x.astype(np.int32) - operand)
        elif name == "pmullw":
            x = _wrap16(x.astype(np.int32) * operand)
        elif name == "pminsw":
            x = np.minimum(x, np.int16(operand))
        elif name == "pmaxsw":
            x = np.maximum(x, np.int16(operand))
        elif name == "psllw":
            x = _wrap16(x.astype(np.int32) << operand)
        elif name == "psraw":
            x = (x >> operand).astype(np.int16)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown pipeline op {name!r}")
    return x


def _wrap16(wide: np.ndarray) -> np.ndarray:
    return (wide & 0xFFFF).astype(np.uint16).astype(np.int16)


def _apply_packed(words: np.ndarray, name: str, operand: int) -> np.ndarray:
    if name in _SHIFT_OPS:
        return getattr(packed, name)(words, operand)
    rhs = np.full(words.shape, operand, dtype=np.int16)
    return getattr(packed, name)(words, rhs)


def synthetic_usimd(params: SyntheticParameters) -> np.ndarray:
    """µSIMD pipeline: packed words of four 16-bit lanes, one op at a time."""
    data, pipeline = synthetic_payload(params)
    words = packed.to_packed(data, packed.LANES_16)
    out = np.empty_like(words)
    for index in range(words.shape[0]):
        word = words[index]
        for name, operand in pipeline:
            word = _apply_packed(word, name, operand)
        out[index] = word
    return packed.from_packed(out)


def synthetic_vector(params: SyntheticParameters,
                     max_vl: int = vectorops.MAX_VL) -> np.ndarray:
    """Vector pipeline: up to ``max_vl`` packed words per operation."""
    data, pipeline = synthetic_payload(params)
    words = packed.to_packed(data, packed.LANES_16)
    out = np.empty_like(words)
    for start in range(0, words.shape[0], max_vl):
        chunk = words[start:start + max_vl]
        for name, operand in pipeline:
            chunk = _apply_packed(chunk, name, operand)
        out[start:start + chunk.shape[0]] = chunk
    return packed.from_packed(out)
