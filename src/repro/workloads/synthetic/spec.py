"""JSON-serialisable program specs for the synthetic workload family.

A :class:`ProgramSpec` is the *portable* form of a generated program: a
tree of :class:`LoopSpec` and :class:`Statement` nodes plus an array
table.  It exists so that

* the generator (:mod:`repro.workloads.synthetic.generator`) can emit a
  value that round-trips through JSON byte-identically — the seed
  determinism tests and the store fingerprints both hang off the
  canonical encoding;
* the fuzz shrinker (:mod:`repro.fuzz`) can apply structural reductions
  (drop a node, halve a trip count, zero a coefficient) as pure tree
  transformations without touching IR internals;
* a checked-in reproducer file (``tests/reproducers/``) can rebuild the
  exact failing program years later, independent of generator drift.

:func:`build_program` lowers a spec to a :class:`KernelProgram` through
the ordinary :class:`~repro.compiler.builder.KernelBuilder` DSL, mapping
statement units onto the target ISA flavour exactly like the shipped
kernels do (vector statements degrade to packed words on the µSIMD
machine and to scalar accesses on the scalar one).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import AddressExpr, ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace

__all__ = [
    "SPEC_FORMAT",
    "Statement",
    "LoopSpec",
    "ProgramSpec",
    "spec_to_dict",
    "spec_from_dict",
    "canonical_spec_json",
    "count_statements",
    "build_program",
]

#: Format tag written into every serialised spec (and reproducer file).
SPEC_FORMAT = "repro-synthetic-spec/1"

#: Statement units, in degradation order: a ``vector`` statement runs as
#: packed words on the µSIMD machine and as scalar code on the scalar one.
UNITS = ("scalar", "packed", "vector")

#: Statement kinds: a memory access or a block of computation.
KINDS = ("mem", "compute")


@dataclass(frozen=True)
class Statement:
    """One leaf of a synthetic program: a memory access or compute block.

    ``coefs`` are byte coefficients per *enclosing* loop, outermost first;
    coefficients beyond the actual nesting depth are ignored (which keeps
    specs valid under the shrinker's loop removals).
    """

    kind: str  # "mem" | "compute"
    unit: str  # "scalar" | "packed" | "vector"
    region: str = "R1"
    # --- memory statements
    array: int = 0
    offset: int = 0
    coefs: Tuple[int, ...] = ()
    store: bool = False
    #: >0: data-dependent access scattering inside this many bytes
    #: (gather/scatter, like ``KernelBuilder.table_lookup``).
    wrap: int = 0
    vl: int = 4
    stride: int = 8
    # --- compute statements
    length: int = 1
    dependent: bool = True

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown statement kind {self.kind!r}")
        if self.unit not in UNITS:
            raise ValueError(f"unknown statement unit {self.unit!r}")
        if self.array < 0 or self.offset < 0 or self.wrap < 0:
            raise ValueError("array index, offset and wrap must be >= 0")
        if not 1 <= self.vl <= 16:
            raise ValueError("vector length must be in 1..16")
        if self.stride <= 0 or self.length < 1:
            raise ValueError("stride and length must be positive")


@dataclass(frozen=True)
class LoopSpec:
    """A counted loop around a sub-tree of nodes."""

    trip: int
    body: Tuple["SpecNode", ...] = ()
    label: str = "L"

    def __post_init__(self) -> None:
        if self.trip < 0:
            raise ValueError("trip count must be >= 0")


SpecNode = Union[Statement, LoopSpec]


@dataclass(frozen=True)
class ProgramSpec:
    """A whole synthetic program: array table plus node tree."""

    name: str
    #: ``(name, size_bytes)`` per array, allocated in order.
    arrays: Tuple[Tuple[str, int], ...]
    body: Tuple[SpecNode, ...] = ()

    def __post_init__(self) -> None:
        if not self.arrays:
            raise ValueError("a program spec needs at least one array")
        for name, size in self.arrays:
            if size <= 0:
                raise ValueError(f"array {name!r} needs a positive size")


# ---------------------------------------------------------------------------
# JSON round trip
# ---------------------------------------------------------------------------

def _node_to_dict(node: SpecNode) -> Dict:
    if isinstance(node, LoopSpec):
        return {"loop": {"trip": node.trip, "label": node.label,
                         "body": [_node_to_dict(child) for child in node.body]}}
    return {"stmt": {"kind": node.kind, "unit": node.unit,
                     "region": node.region, "array": node.array,
                     "offset": node.offset, "coefs": list(node.coefs),
                     "store": node.store, "wrap": node.wrap, "vl": node.vl,
                     "stride": node.stride, "length": node.length,
                     "dependent": node.dependent}}


def _node_from_dict(data: Dict) -> SpecNode:
    if "loop" in data:
        loop = data["loop"]
        return LoopSpec(trip=int(loop["trip"]), label=str(loop["label"]),
                        body=tuple(_node_from_dict(child)
                                   for child in loop["body"]))
    stmt = data["stmt"]
    return Statement(kind=stmt["kind"], unit=stmt["unit"],
                     region=stmt["region"], array=int(stmt["array"]),
                     offset=int(stmt["offset"]),
                     coefs=tuple(int(c) for c in stmt["coefs"]),
                     store=bool(stmt["store"]), wrap=int(stmt["wrap"]),
                     vl=int(stmt["vl"]), stride=int(stmt["stride"]),
                     length=int(stmt["length"]),
                     dependent=bool(stmt["dependent"]))


def spec_to_dict(spec: ProgramSpec) -> Dict:
    return {"format": SPEC_FORMAT, "name": spec.name,
            "arrays": [[name, size] for name, size in spec.arrays],
            "body": [_node_to_dict(node) for node in spec.body]}


def spec_from_dict(data: Dict) -> ProgramSpec:
    if data.get("format") != SPEC_FORMAT:
        raise ValueError(f"unsupported spec format {data.get('format')!r} "
                         f"(expected {SPEC_FORMAT!r})")
    return ProgramSpec(name=str(data["name"]),
                       arrays=tuple((str(name), int(size))
                                    for name, size in data["arrays"]),
                       body=tuple(_node_from_dict(node)
                                  for node in data["body"]))


def canonical_spec_json(spec: ProgramSpec) -> str:
    """The byte-stable encoding the determinism tests compare."""
    return json.dumps(spec_to_dict(spec), sort_keys=True,
                      separators=(",", ":"))


def count_statements(spec: ProgramSpec) -> int:
    """Number of :class:`Statement` leaves (the shrinker's size metric)."""
    def walk(nodes: Sequence[SpecNode]) -> int:
        total = 0
        for node in nodes:
            total += walk(node.body) if isinstance(node, LoopSpec) else 1
        return total
    return walk(spec.body)


# ---------------------------------------------------------------------------
# Lowering a spec to IR through the builder DSL
# ---------------------------------------------------------------------------

def _effective_unit(unit: str, flavor: ISAFlavor) -> str:
    if flavor is ISAFlavor.SCALAR:
        return "scalar"
    if flavor is ISAFlavor.USIMD and unit == "vector":
        return "packed"
    return unit


def _address(stmt: Statement, arrays, env) -> AddressExpr:
    spec = arrays[stmt.array % len(arrays)]
    terms = tuple((var, coef) for var, coef in zip(env, stmt.coefs) if coef)
    wrap = min(stmt.wrap, spec.size_bytes) or None
    return AddressExpr(base=spec.base + stmt.offset % spec.size_bytes,
                       terms=terms, wrap_bytes=wrap)


def _emit_mem(b: KernelBuilder, stmt: Statement, arrays, env) -> None:
    unit = _effective_unit(stmt.unit, b.flavor)
    address = _address(stmt, arrays, env)
    if unit == "vector":
        b.setvl(stmt.vl)
        if stmt.stride != 8 and stmt.stride % 8 == 0:
            b.setvs(stride_words=stmt.stride // 8)
        if stmt.store:
            value = b.vop(Opcode.VADDW, vl=stmt.vl, comment="synth value")
            b.vstore(address, value, vl=stmt.vl, stride_bytes=stmt.stride)
        else:
            b.vload(address, vl=stmt.vl, stride_bytes=stmt.stride)
    elif unit == "packed":
        if stmt.store:
            value = b.simd(Opcode.PADDW, comment="synth value")
            b.mstore(address, value)
        else:
            b.mload(address)
    else:
        if stmt.store:
            b.store(address, b.iop(Opcode.MOV, comment="synth value"))
        else:
            b.load(address)


def _emit_compute(b: KernelBuilder, stmt: Statement) -> None:
    unit = _effective_unit(stmt.unit, b.flavor)
    if unit == "vector":
        b.setvl(stmt.vl)
        value = b.vop(Opcode.VADDW, vl=stmt.vl)
        for _ in range(stmt.length - 1):
            srcs = (value,) if stmt.dependent else ()
            value = b.vop(Opcode.VADDW, *srcs, vl=stmt.vl)
    elif unit == "packed":
        value = b.simd(Opcode.PADDW)
        for _ in range(stmt.length - 1):
            srcs = (value,) if stmt.dependent else ()
            value = b.simd(Opcode.PADDW, *srcs)
    elif stmt.dependent:
        b.dependent_chain(stmt.length)
    else:
        b.independent_ops(stmt.length)


def _emit_nodes(b: KernelBuilder, nodes: Sequence[SpecNode], arrays,
                env: List) -> None:
    for node in nodes:
        if isinstance(node, LoopSpec):
            with b.loop(node.trip, name=node.label) as var:
                env.append(var)
                try:
                    _emit_nodes(b, node.body, arrays, env)
                finally:
                    env.pop()
        else:
            with b.region(node.region, "synthetic region",
                          vectorizable=node.region != "R0"):
                if node.kind == "mem":
                    _emit_mem(b, node, arrays, env)
                else:
                    _emit_compute(b, node)


def build_program(spec: ProgramSpec, flavor: ISAFlavor) -> KernelProgram:
    """Lower ``spec`` to a :class:`KernelProgram` for ``flavor``."""
    space = AddressSpace()
    arrays = [space.allocate(name, (size,), element_bytes=1)
              for name, size in spec.arrays]
    builder = KernelBuilder(spec.name, flavor, address_space=space)
    _emit_nodes(builder, spec.body, arrays, [])
    return builder.program()
