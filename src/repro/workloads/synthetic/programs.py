"""The registered synthetic benchmarks.

Three presets of the seeded generator ship as ordinary registry entries,
so ``bench list``, ``report --benchmarks tag:synthetic``, ``sweep`` and
``explore`` all work on generated programs out of the box:

``synthetic_stream``
    Streaming-biased mix — mostly unit-stride packed/vector traffic,
    shallow nests.  The shape the trace tier is fastest on.
``synthetic_gather``
    Gather/scatter and strided-access heavy — every wrapped-address and
    non-unit-stride path through both engines.
``synthetic_deep``
    Deep nests, long dependence chains and a high degenerate-loop density
    (zero-trip and single-iteration nests) — the lowering edge cases.

Each preset is its own parameter family (families share one canonical
default/tiny contract, and the presets differ in exactly those), all
tagged ``synthetic`` so ``tag:synthetic`` selects the family.  The
builders are plain module-level callables, so the definitions pickle to
pool workers like any user registration.
"""

from __future__ import annotations

from repro.workloads.registry import register_workload
from repro.workloads.synthetic.generator import (
    SyntheticParameters,
    build_synthetic_program,
)

__all__ = [
    "build_synthetic_stream",
    "build_synthetic_gather",
    "build_synthetic_deep",
]

_TAGS = ("synthetic", "generated")


@register_workload(
    "synthetic_stream", family="synthetic_stream",
    params=SyntheticParameters,
    default=SyntheticParameters(seed=101, depth=2, statements=24,
                                min_trip=4, max_trip=64,
                                stride_density=0.1, gather_density=0.05,
                                chain_length=4, scalar_weight=1,
                                packed_weight=3, vector_weight=3,
                                footprint_kb=64, degenerate_density=0.0),
    tiny=SyntheticParameters(seed=101, depth=2, statements=8,
                             min_trip=2, max_trip=6,
                             stride_density=0.1, gather_density=0.05,
                             chain_length=3, scalar_weight=1,
                             packed_weight=3, vector_weight=3,
                             footprint_kb=4, degenerate_density=0.0),
    description="seeded random program, streaming-biased access mix",
    tags=_TAGS)
def build_synthetic_stream(flavor, params):
    return build_synthetic_program(flavor, params)


@register_workload(
    "synthetic_gather", family="synthetic_gather",
    params=SyntheticParameters,
    default=SyntheticParameters(seed=202, depth=3, statements=20,
                                min_trip=2, max_trip=32,
                                stride_density=0.6, gather_density=0.5,
                                chain_length=4, scalar_weight=1,
                                packed_weight=2, vector_weight=3,
                                footprint_kb=48, degenerate_density=0.05),
    tiny=SyntheticParameters(seed=202, depth=2, statements=8,
                             min_trip=1, max_trip=5,
                             stride_density=0.6, gather_density=0.5,
                             chain_length=3, scalar_weight=1,
                             packed_weight=2, vector_weight=3,
                             footprint_kb=4, degenerate_density=0.05),
    description="seeded random program, gather/scatter and stride heavy",
    tags=_TAGS)
def build_synthetic_gather(flavor, params):
    return build_synthetic_program(flavor, params)


@register_workload(
    "synthetic_deep", family="synthetic_deep",
    params=SyntheticParameters,
    default=SyntheticParameters(seed=303, depth=5, statements=18,
                                min_trip=0, max_trip=12,
                                stride_density=0.25, gather_density=0.15,
                                chain_length=10, scalar_weight=2,
                                packed_weight=2, vector_weight=1,
                                footprint_kb=32, degenerate_density=0.35),
    tiny=SyntheticParameters(seed=303, depth=4, statements=8,
                             min_trip=0, max_trip=4,
                             stride_density=0.25, gather_density=0.15,
                             chain_length=5, scalar_weight=2,
                             packed_weight=2, vector_weight=1,
                             footprint_kb=4, degenerate_density=0.35),
    description="seeded random program, deep nests and degenerate loops",
    tags=_TAGS)
def build_synthetic_deep(flavor, params):
    return build_synthetic_program(flavor, params)
