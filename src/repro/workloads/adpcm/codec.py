"""Functional IMA ADPCM encode/decode in the three ISA flavours.

The IMA/DVI ADPCM codec quantises the difference between each 16-bit
sample and an adaptive predictor into a 4-bit code; predictor and
step-size index are first-order recurrences over every sample.  Samples
are processed in independent **blocks** (predictor and index reset per
block — the real IMA block format), because across blocks is the *only*
axis with any data parallelism:

* :func:`adpcm_encode_reference` / :func:`adpcm_decode_reference` —
  pure-Python per-sample recurrences, the oracle;
* :func:`adpcm_decode_usimd` — the per-sample update applied to packed
  words of two 32-bit lanes (``paddd`` / ``psubd``), two blocks per word,
  looping serially over the in-block sample index.  The step-table lookup
  and the predictor clamp remain scalar fix-ups, as they do in real
  packed implementations;
* :func:`adpcm_decode_vector` — the same update with the packed words
  stacked into vector-register values.

All flavours are bit-identical (asserted by the tests).  Within a block
nothing vectorises — that recurrence is exactly why the ``adpcm_codec``
benchmark stresses the scalar/µSIMD gap.
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed, vectorops

__all__ = [
    "STEP_TABLE",
    "INDEX_TABLE",
    "adpcm_encode_reference",
    "adpcm_decode_reference",
    "adpcm_decode_usimd",
    "adpcm_decode_vector",
]

#: The 89-entry IMA step-size table.
STEP_TABLE = np.array([
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767], dtype=np.int64)

#: Step-index adaptation per 3-bit code magnitude.
INDEX_TABLE = np.array([-1, -1, -1, -1, 2, 4, 6, 8], dtype=np.int64)


def _check_blocks(values: np.ndarray, what: str) -> np.ndarray:
    values = np.asarray(values)
    if values.ndim != 2 or values.shape[0] < 1 or values.shape[1] < 1:
        raise ValueError(f"expected a 2-D (blocks, samples) array of {what}")
    return values


def adpcm_encode_reference(samples: np.ndarray) -> np.ndarray:
    """Encode ``(blocks, samples)`` int16 samples to 4-bit codes (uint8)."""
    samples = _check_blocks(samples, "samples").astype(np.int64)
    codes = np.zeros(samples.shape, dtype=np.uint8)
    for b in range(samples.shape[0]):
        predictor, index = 0, 0
        for n in range(samples.shape[1]):
            step = int(STEP_TABLE[index])
            diff = int(samples[b, n]) - predictor
            sign = 8 if diff < 0 else 0
            diff = abs(diff)
            delta, vpdiff = 0, step >> 3
            if diff >= step:
                delta |= 4
                diff -= step
                vpdiff += step
            if diff >= step >> 1:
                delta |= 2
                diff -= step >> 1
                vpdiff += step >> 1
            if diff >= step >> 2:
                delta |= 1
                vpdiff += step >> 2
            predictor += -vpdiff if sign else vpdiff
            predictor = max(-32768, min(32767, predictor))
            index = max(0, min(88, index + int(INDEX_TABLE[delta])))
            codes[b, n] = sign | delta
    return codes


def adpcm_decode_reference(codes: np.ndarray) -> np.ndarray:
    """Decode 4-bit codes back to int16 samples (the per-sample oracle)."""
    codes = _check_blocks(codes, "codes").astype(np.int64)
    samples = np.zeros(codes.shape, dtype=np.int16)
    for b in range(codes.shape[0]):
        predictor, index = 0, 0
        for n in range(codes.shape[1]):
            code = int(codes[b, n])
            step = int(STEP_TABLE[index])
            vpdiff = step >> 3
            if code & 4:
                vpdiff += step
            if code & 2:
                vpdiff += step >> 1
            if code & 1:
                vpdiff += step >> 2
            predictor += -vpdiff if code & 8 else vpdiff
            predictor = max(-32768, min(32767, predictor))
            index = max(0, min(88, index + int(INDEX_TABLE[code & 7])))
            samples[b, n] = predictor
    return samples


def _decode_sweep(codes: np.ndarray, add, sub) -> np.ndarray:
    """The block-parallel decode; flavours differ in the add/sub backend.

    ``add``/``sub`` combine two int32 vectors of one value per block.  The
    step-table lookup, the mask selects on the (known) code nibble and the
    16-bit predictor clamp are scalar fix-ups in every real packed
    implementation and stay NumPy here.
    """
    codes = _check_blocks(codes, "codes").astype(np.int64)
    blocks, length = codes.shape
    predictor = np.zeros(blocks, dtype=np.int32)
    index = np.zeros(blocks, dtype=np.int64)
    samples = np.zeros(codes.shape, dtype=np.int16)
    for n in range(length):
        code = codes[:, n]
        step = STEP_TABLE[index].astype(np.int32)
        vpdiff = step >> 3
        vpdiff = add(vpdiff, np.where(code & 4, step, 0).astype(np.int32))
        vpdiff = add(vpdiff, np.where(code & 2, step >> 1, 0).astype(np.int32))
        vpdiff = add(vpdiff, np.where(code & 1, step >> 2, 0).astype(np.int32))
        negative = (code & 8).astype(bool)
        moved_down = sub(predictor, np.where(negative, vpdiff, 0).astype(np.int32))
        moved_up = add(predictor, np.where(negative, 0, vpdiff).astype(np.int32))
        predictor = np.where(negative, moved_down, moved_up).astype(np.int32)
        predictor = np.clip(predictor, -32768, 32767).astype(np.int32)
        index = np.clip(index + INDEX_TABLE[code & 7], 0, 88)
        samples[:, n] = predictor.astype(np.int16)
    return samples


def _to_words(flat: np.ndarray) -> tuple:
    flat = np.asarray(flat, dtype=np.int32)
    pad = (-flat.shape[0]) % packed.LANES_32
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, np.int32)])
    return packed.to_packed(flat, packed.LANES_32), flat.shape[0] - pad


def adpcm_decode_usimd(codes: np.ndarray) -> np.ndarray:
    """µSIMD decode: two blocks per packed word (``paddd`` / ``psubd``)."""

    def add(a, b):
        words_a, size = _to_words(a)
        words_b, _ = _to_words(b)
        return packed.from_packed(packed.paddd(words_a, words_b))[:size]

    def sub(a, b):
        words_a, size = _to_words(a)
        words_b, _ = _to_words(b)
        return packed.from_packed(packed.psubd(words_a, words_b))[:size]

    return _decode_sweep(codes, add=add, sub=sub)


def adpcm_decode_vector(codes: np.ndarray) -> np.ndarray:
    """Vector-µSIMD decode: the packed words stacked into vector values."""

    def add(a, b):
        words_a, size = _to_words(a)
        words_b, _ = _to_words(b)
        return packed.from_packed(
            vectorops.vmap2(packed.paddd, words_a, words_b))[:size]

    def sub(a, b):
        words_a, size = _to_words(a)
        words_b, _ = _to_words(b)
        return packed.from_packed(
            vectorops.vmap2(packed.psubd, words_a, words_b))[:size]

    return _decode_sweep(codes, add=add, sub=sub)
