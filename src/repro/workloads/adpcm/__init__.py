"""IMA ADPCM speech codec (recurrence-limited, the anti-vector workload).

IMA/DVI ADPCM compresses 16-bit samples to 4-bit codes by quantising the
difference against an adaptive predictor.  Both the predictor and the
step-size index are first-order recurrences over *every* sample, so the
codec barely vectorises — within a block the only data parallelism is
across independent blocks (the real-world IMA block format exists exactly
for this reason).  The kernel is registered as a deliberate stress of the
scalar/µSIMD gap: its scalar region dominates, so wider issue and vector
hardware buy almost nothing — the opposite end of the spectrum from
``mpeg2_enc``.

* :mod:`repro.workloads.adpcm.codec` — functional encode/decode with the
  block-parallel µSIMD and Vector-µSIMD decode flavours, bit-identical;
* :mod:`repro.workloads.adpcm.programs` — the ``adpcm_codec`` kernel
  program registered with the workload registry.
"""

from repro.workloads.adpcm.codec import (
    adpcm_decode_reference,
    adpcm_decode_usimd,
    adpcm_decode_vector,
    adpcm_encode_reference,
)

__all__ = [
    "adpcm_encode_reference",
    "adpcm_decode_reference",
    "adpcm_decode_usimd",
    "adpcm_decode_vector",
]
