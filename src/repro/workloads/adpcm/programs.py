"""Kernel program (timing model) for the IMA ADPCM codec.

Region structure:

``adpcm_codec``
    * R0 — essentially the whole benchmark: the encoder's
      quantise-and-predict recurrence, the nibble packing (a bit-buffer
      recurrence), the decoder's table-driven reconstruction and its
      predictor recurrence.  Every sample depends on the previous one
      through predictor *and* step index, so none of it vectorises —
      this kernel is the deliberate stress of the scalar/µSIMD gap, the
      opposite end of the suite's spectrum from ``mpeg2_enc``;
    * R1 — the only data-parallel part: de-interleaving the decoded
      blocks into the output stream (a short element-wise pass).

Expect the Table-1-style vectorisation percentage of this benchmark to be
the lowest of the extended suite, and its speed-up on every machine
family to hug 1× — that is the point of shipping it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.workloads import common
from repro.workloads.registry import register_workload

__all__ = ["AdpcmParameters", "build_adpcm_codec_program"]


@dataclass(frozen=True)
class AdpcmParameters:
    """Input geometry of the ADPCM codec benchmark."""

    #: independent IMA blocks (predictor and step index reset per block)
    blocks: int = 8
    #: samples per block
    block_samples: int = 256
    #: extra scalar work per sample (clamps, step adaptation, bookkeeping)
    scalar_work: int = 12

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise ValueError("need at least one block")
        if self.block_samples < 8 or self.block_samples % 8:
            raise ValueError("block_samples must be a positive multiple of 8")


#: per-sample quantiser work besides the recurrence itself
_QUANT_WORK_MIX = ((Opcode.SUB, 2), (Opcode.CMP, 3), (Opcode.SHR, 3),
                   (Opcode.OR, 2))
#: per-sample reconstruction work on the decode side
_RECON_WORK_MIX = ((Opcode.ADD, 3), (Opcode.CMP, 2), (Opcode.SHR, 2),
                   (Opcode.AND, 2))
#: the tiny element-wise de-interleave pass (R1)
_DEINTERLEAVE_SCALAR_MIX = ((Opcode.ADD, 2), (Opcode.SHR, 1))
_DEINTERLEAVE_PACKED_MIX = ((Opcode.PADDW, 1), (Opcode.PSHIFT, 1),
                            (Opcode.PLOGICAL, 1))
_DEINTERLEAVE_VECTOR_MIX = ((Opcode.VADDW, 1), (Opcode.VSHIFT, 1),
                            (Opcode.VLOGICAL, 1))


@register_workload("adpcm_codec", family="adpcm", params=AdpcmParameters,
                   tiny=AdpcmParameters(blocks=2, block_samples=64),
                   description="IMA ADPCM encode+decode: per-sample "
                               "recurrences, deliberately poor vectorisation",
                   tags=("mediabench-plus", "speech", "recurrence"))
def build_adpcm_codec_program(flavor: ISAFlavor,
                              params: AdpcmParameters = AdpcmParameters()
                              ) -> KernelProgram:
    """IMA ADPCM encode+decode program in the requested ISA flavour."""
    space = AddressSpace()
    total = params.blocks * params.block_samples
    samples = space.allocate("samples", (total,), element_bytes=2)
    codes = space.allocate("codes", (total,), element_bytes=1)
    decoded = space.allocate("decoded", (params.blocks, params.block_samples),
                             element_bytes=2)
    output = space.allocate("output", (params.blocks, params.block_samples),
                            element_bytes=2)
    step_table = space.allocate("step_table", (89,), element_bytes=2)
    index_table = space.allocate("index_table", (16,), element_bytes=2)

    builder = KernelBuilder("adpcm_codec", flavor, address_space=space)

    with builder.loop(params.blocks, name="block"):
        # R0: encode (predict + quantise + pack), then decode (unpack +
        # reconstruct).  All four passes are per-sample recurrences.
        with builder.region("R0", "Predictor recurrences and (de)quantisation",
                            vectorizable=False):
            common.emit_recursive_filter(
                builder, samples, codes, samples=params.block_samples, taps=2,
                work_mix=_QUANT_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
                label="enc_predict")
            common.emit_bitstream_encoder(
                builder, samples, step_table, codes,
                count=params.block_samples,
                work_mix=_QUANT_WORK_MIX, lookups=2, label="nibble_pack")
            common.emit_table_decoder(
                builder, codes, index_table, codes,
                count=params.block_samples,
                work_mix=_RECON_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
                lookups=2, label="dec_step")
            common.emit_recursive_filter(
                builder, codes, decoded, samples=params.block_samples, taps=2,
                work_mix=_RECON_WORK_MIX, label="dec_predict")

    # R1: the only data-parallel part — de-interleave the decoded blocks
    with builder.region("R1", "Block de-interleave", vectorizable=True):
        if flavor is ISAFlavor.SCALAR:
            common.emit_elementwise_scalar(
                builder, [decoded], [output], params.blocks,
                params.block_samples, _DEINTERLEAVE_SCALAR_MIX,
                element_bytes=2, label="deint")
        elif flavor is ISAFlavor.USIMD:
            common.emit_elementwise_usimd(
                builder, [decoded], [output], params.blocks,
                params.block_samples, _DEINTERLEAVE_PACKED_MIX,
                element_bytes=2, label="deint")
        else:
            common.emit_elementwise_vector(
                builder, [decoded], [output], params.blocks,
                params.block_samples, _DEINTERLEAVE_VECTOR_MIX,
                vl=16, element_bytes=2, label="deint")
    return builder.program()
