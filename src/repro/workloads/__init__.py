"""Workloads: the paper's six applications plus a pluggable registry.

Each benchmark is expressed twice:

* **functionally** — the DLP kernels are implemented as plain NumPy
  reference code *and* as µSIMD / Vector-µSIMD versions written against
  the emulation layer (:mod:`repro.isa`), so the tests can prove the
  three versions compute identical results;
* **as kernel programs** — IR builders produce, for each ISA flavour, the
  region-tagged loop nests the compiler schedules and the simulator times.
  The scalar (R0) regions — Huffman/VLC coding, bit I/O, LPC recurrences,
  table look-ups — are shared by all three flavours, exactly as in the
  paper, and are built from dependence structures that limit their ILP.

Benchmarks resolve through the :mod:`repro.workloads.registry`
(``register_workload``): the six applications of the paper's evaluation
(JPEG, MPEG-2 and GSM encode/decode — tag ``mediabench``), the four
access-pattern kernels of the extended suite (Viterbi ACS, FIR bank,
Sobel stencil, ADPCM recurrence — completing tag ``mediabench-plus``),
and any workload a user registers.  ``docs/workloads.md`` is the
authoring guide.

The original Mediabench inputs are replaced by deterministic synthetic
media (:mod:`repro.workloads.data`); sizes are reduced so a pure-Python
simulator stays tractable.  (The reduced sizes were once recorded in an
``EXPERIMENTS.md`` file that no longer exists; today they are the
``default``/``tiny`` parameters each workload registers, rendered by
``python -m repro bench list``.)
"""

from repro.workloads.data import synthetic_image, synthetic_video, synthetic_speech
from repro.workloads.registry import (
    WorkloadDefinition,
    get_workload,
    register_workload,
    register_workload_definition,
    registered_workloads,
    select_benchmarks,
    unregister_workload,
    workload_names,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    EXTENDED_BENCHMARK_NAMES,
    build_benchmark,
    build_suite,
    SuiteParameters,
)

__all__ = [
    "synthetic_image",
    "synthetic_video",
    "synthetic_speech",
    "BENCHMARK_NAMES",
    "EXTENDED_BENCHMARK_NAMES",
    "build_benchmark",
    "build_suite",
    "SuiteParameters",
    "WorkloadDefinition",
    "register_workload",
    "register_workload_definition",
    "unregister_workload",
    "get_workload",
    "registered_workloads",
    "workload_names",
    "select_benchmarks",
]
