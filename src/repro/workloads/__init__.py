"""Workloads: the six Mediabench-style applications of the paper's evaluation.

Each benchmark (JPEG encode/decode, MPEG-2 encode/decode, GSM encode/decode)
is expressed twice:

* **functionally** — the DLP kernels of Table 1 are implemented as plain
  NumPy reference code *and* as µSIMD / Vector-µSIMD versions written
  against the emulation layer (:mod:`repro.isa`), so the tests can prove the
  three versions compute identical results;
* **as kernel programs** — IR builders produce, for each ISA flavour, the
  region-tagged loop nests the compiler schedules and the simulator times.
  The scalar (R0) regions — Huffman/VLC coding, bit I/O, LPC recurrences,
  table look-ups — are shared by all three flavours, exactly as in the
  paper, and are built from dependence structures that limit their ILP.

The original Mediabench inputs are replaced by deterministic synthetic media
(:mod:`repro.workloads.data`); sizes are reduced so a pure-Python simulator
stays tractable and are recorded in EXPERIMENTS.md.
"""

from repro.workloads.data import synthetic_image, synthetic_video, synthetic_speech
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    build_benchmark,
    build_suite,
    SuiteParameters,
)

__all__ = [
    "synthetic_image",
    "synthetic_video",
    "synthetic_speech",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "build_suite",
    "SuiteParameters",
]
