"""The benchmark suite: the paper's six applications plus registered extras.

:func:`build_suite` constructs benchmarks as
:class:`~repro.core.runner.BenchmarkSpec` instances (three programs —
scalar, µSIMD and Vector-µSIMD — sharing the same scalar-region code).
Benchmarks resolve through the :mod:`repro.workloads.registry`: the six
applications of the paper's evaluation (:data:`BENCHMARK_NAMES`, tag
``mediabench``) are registered by their program modules, the four
access-pattern kernels of the extended suite (tag ``mediabench-plus``)
likewise, and user workloads registered with
:func:`~repro.workloads.registry.register_workload` build the same way.

Input sizes come from :class:`SuiteParameters`; the defaults are the
reduced Mediabench stand-ins used for the published report numbers (the
output of ``python -m repro report``), and :meth:`SuiteParameters.tiny` —
assembled from the tiny sizes each workload registered — gives a much
smaller variant the unit tests use to keep simulation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Tuple

from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.core.runner import BenchmarkSpec
from repro.workloads import registry

# Populate the registry in its canonical (presentation) order before any
# other import of the program modules can register entries alphabetically.
registry.ensure_builtin_workloads()

from repro.workloads.adpcm.programs import AdpcmParameters  # noqa: E402
from repro.workloads.fir.programs import FirBankParameters  # noqa: E402
from repro.workloads.gsm.programs import GsmParameters  # noqa: E402
from repro.workloads.jpeg.programs import JpegParameters  # noqa: E402
from repro.workloads.mpeg2.programs import Mpeg2Parameters  # noqa: E402
from repro.workloads.sobel.programs import SobelParameters  # noqa: E402
from repro.workloads.viterbi.programs import ViterbiParameters  # noqa: E402

__all__ = [
    "BENCHMARK_NAMES",
    "EXTENDED_BENCHMARK_NAMES",
    "SYNTHETIC_BENCHMARK_NAMES",
    "SuiteParameters",
    "build_benchmark",
    "build_suite",
]

#: The paper's six benchmarks, in the order the figures present them.
#: Every default report iterates exactly this tuple, which is what keeps
#: the published output byte-stable as the registry grows.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "jpeg_enc", "jpeg_dec", "mpeg2_enc", "mpeg2_dec", "gsm_enc", "gsm_dec",
)

#: The extended ten-benchmark suite (``tag:mediabench-plus``): the paper's
#: six plus the four access-pattern kernels (Viterbi ACS, FIR bank, Sobel
#: stencil, ADPCM recurrence).
EXTENDED_BENCHMARK_NAMES: Tuple[str, ...] = BENCHMARK_NAMES + (
    "viterbi_dec", "fir_bank", "sobel_edge", "adpcm_codec",
)

#: The seeded synthetic presets (``tag:synthetic``): deterministic random
#: programs the trace-vs-interpreter fuzz lane sweeps (see
#: :mod:`repro.workloads.synthetic` and ``python -m repro fuzz``).  They
#: ship after the extended suite, so the published report tables — which
#: iterate :data:`BENCHMARK_NAMES` / :data:`EXTENDED_BENCHMARK_NAMES` —
#: stay byte-stable.
SYNTHETIC_BENCHMARK_NAMES: Tuple[str, ...] = (
    "synthetic_stream", "synthetic_gather", "synthetic_deep",
)


@dataclass(frozen=True)
class SuiteParameters:
    """Input sizes for the whole suite, one field per parameter family.

    The per-family defaults are the reduced inputs used for the published
    report numbers.  Workloads registered under a family not listed here
    (user extensions) are parameterised through :attr:`extras` — see
    :meth:`with_family` — and otherwise fall back to the sizes their
    registry entry declared.
    """

    jpeg: JpegParameters = JpegParameters()
    mpeg2: Mpeg2Parameters = Mpeg2Parameters()
    gsm: GsmParameters = GsmParameters()
    viterbi: ViterbiParameters = ViterbiParameters()
    fir: FirBankParameters = FirBankParameters()
    sobel: SobelParameters = SobelParameters()
    adpcm: AdpcmParameters = AdpcmParameters()
    #: ``(family, params)`` pairs for families beyond the fields above.
    extras: Tuple[Tuple[str, object], ...] = ()
    #: Set by :meth:`tiny`: families not pinned by a field or an extras
    #: entry (e.g. workloads registered *after* this instance was built)
    #: fall back to their registered **tiny** sizes instead of the
    #: full-size defaults, so a tiny instance stays tiny.
    tiny_fallback: bool = False

    @staticmethod
    def default() -> "SuiteParameters":
        """The sizes used for the published ``python -m repro report``."""
        return SuiteParameters()

    @staticmethod
    def tiny() -> "SuiteParameters":
        """Much smaller inputs for unit tests (seconds, not minutes).

        Assembled from the tiny sizes the registered workload families
        declare, so a new kernel's test sizing lives next to its builder.
        """
        sizes = {family: registry.family_parameters(family, tiny=True)
                 for family in registry.registered_families()}
        # "extras" is a reserved field name, never a parameter family — a
        # user family called "extras" must ride in the extras tuple too
        fields = {name: sizes.pop(name) for name in list(sizes)
                  if name in SuiteParameters.__dataclass_fields__
                  and name not in ("extras", "tiny_fallback")}
        return SuiteParameters(extras=tuple(sorted(sizes.items())),
                               tiny_fallback=True, **fields)

    def with_family(self, family: str, params: object) -> "SuiteParameters":
        """A copy carrying ``params`` for a custom (extra) family."""
        extras = tuple((name, value) for name, value in self.extras
                       if name != family) + ((family, params),)
        return replace(self, extras=extras)

    def for_family(self, family: str) -> object:
        """The parameter instance benchmarks of ``family`` build with.

        Resolution order: an :attr:`extras` entry, a dataclass field of
        this instance, then the family's registered default sizes.
        """
        for name, params in self.extras:
            if name == family:
                return params
        if (family in SuiteParameters.__dataclass_fields__
                and family not in ("extras", "tiny_fallback")):
            return getattr(self, family)
        return registry.family_parameters(family, tiny=self.tiny_fallback)


def build_benchmark(name: str,
                    params: SuiteParameters | None = None,
                    flavors: Iterable[ISAFlavor] = (ISAFlavor.SCALAR, ISAFlavor.USIMD,
                                                    ISAFlavor.VECTOR)) -> BenchmarkSpec:
    """Build one benchmark (all requested ISA flavours) by registry name."""
    params = params or SuiteParameters.default()
    definition = registry.get_workload(name)
    family_params = params.for_family(definition.family)
    programs: Dict[ISAFlavor, KernelProgram] = {
        flavor: definition.builder(flavor, family_params) for flavor in flavors
    }
    return BenchmarkSpec(name=name, programs=programs,
                         description=definition.description)


def build_suite(params: SuiteParameters | None = None,
                names: Iterable[str] = BENCHMARK_NAMES) -> Dict[str, BenchmarkSpec]:
    """Build the full suite (or any subset of registered names) keyed by name."""
    params = params or SuiteParameters.default()
    return {name: build_benchmark(name, params) for name in names}
