"""The benchmark suite: the six applications of the paper's evaluation.

:func:`build_suite` constructs every benchmark as a
:class:`~repro.core.runner.BenchmarkSpec` (three programs — scalar, µSIMD and
Vector-µSIMD — sharing the same scalar-region code).  Input sizes come from
:class:`SuiteParameters`; the defaults are the reduced Mediabench stand-ins
used for the published EXPERIMENTS.md numbers, and :meth:`SuiteParameters.tiny`
gives a much smaller variant the unit tests use to keep simulation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Tuple

from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.core.runner import BenchmarkSpec
from repro.workloads.gsm.programs import GsmParameters, build_gsm_dec_program, build_gsm_enc_program
from repro.workloads.jpeg.programs import JpegParameters, build_jpeg_dec_program, build_jpeg_enc_program
from repro.workloads.mpeg2.programs import Mpeg2Parameters, build_mpeg2_dec_program, build_mpeg2_enc_program

__all__ = ["BENCHMARK_NAMES", "SuiteParameters", "build_benchmark", "build_suite"]

#: Benchmarks in the order the paper's figures present them.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "jpeg_enc", "jpeg_dec", "mpeg2_enc", "mpeg2_dec", "gsm_enc", "gsm_dec",
)


@dataclass(frozen=True)
class SuiteParameters:
    """Input sizes for the whole suite (see DESIGN.md §6, reduced inputs)."""

    jpeg: JpegParameters = JpegParameters(width=64, height=64)
    mpeg2: Mpeg2Parameters = Mpeg2Parameters(width=64, height=64, frames=2,
                                             search_radius=1)
    gsm: GsmParameters = GsmParameters(frames=4)

    @staticmethod
    def default() -> "SuiteParameters":
        """The sizes used for the published results in EXPERIMENTS.md."""
        return SuiteParameters()

    @staticmethod
    def tiny() -> "SuiteParameters":
        """Much smaller inputs for unit tests (seconds, not minutes)."""
        return SuiteParameters(
            jpeg=JpegParameters(width=32, height=32),
            mpeg2=Mpeg2Parameters(width=32, height=32, frames=1, search_radius=1),
            gsm=GsmParameters(frames=1),
        )


_BUILDERS = {
    "jpeg_enc": ("jpeg", build_jpeg_enc_program,
                 "JPEG encoder: colour conversion, forward DCT, quantisation"),
    "jpeg_dec": ("jpeg", build_jpeg_dec_program,
                 "JPEG decoder: colour conversion, h2v2 up-sampling"),
    "mpeg2_enc": ("mpeg2", build_mpeg2_enc_program,
                  "MPEG-2 encoder: motion estimation, forward/inverse DCT"),
    "mpeg2_dec": ("mpeg2", build_mpeg2_dec_program,
                  "MPEG-2 decoder: prediction, inverse DCT, add block"),
    "gsm_enc": ("gsm", build_gsm_enc_program,
                "GSM encoder: LTP parameters, autocorrelation"),
    "gsm_dec": ("gsm", build_gsm_dec_program,
                "GSM decoder: long-term filtering"),
}


def build_benchmark(name: str,
                    params: SuiteParameters | None = None,
                    flavors: Iterable[ISAFlavor] = (ISAFlavor.SCALAR, ISAFlavor.USIMD,
                                                    ISAFlavor.VECTOR)) -> BenchmarkSpec:
    """Build one benchmark (all requested ISA flavours) by name."""
    params = params or SuiteParameters.default()
    try:
        family, builder, description = _BUILDERS[name]
    except KeyError as exc:
        raise KeyError(f"unknown benchmark {name!r}; known: {BENCHMARK_NAMES}") from exc
    family_params = getattr(params, family)
    programs: Dict[ISAFlavor, KernelProgram] = {
        flavor: builder(flavor, family_params) for flavor in flavors
    }
    return BenchmarkSpec(name=name, programs=programs, description=description)


def build_suite(params: SuiteParameters | None = None,
                names: Iterable[str] = BENCHMARK_NAMES) -> Dict[str, BenchmarkSpec]:
    """Build the full suite (or a subset) keyed by benchmark name."""
    params = params or SuiteParameters.default()
    return {name: build_benchmark(name, params) for name in names}
