"""Sobel edge detection (2-D stencil).

The classic 3×3 gradient operator: every output pixel combines the eight
neighbours of its input pixel through the two Sobel kernels and takes
``|Gx| + |Gy|`` saturated to a byte.  As a memory access pattern this is a
**2-D stencil with neighbour reuse**: three adjacent input rows are live
per output row, and consecutive rows re-read two of the three — the reuse
pattern the vector cache rewards and none of the paper's six benchmarks
exhibits (their streaming kernels touch each input element once).

* :mod:`repro.workloads.sobel.stencil` — functional NumPy reference plus
  µSIMD and Vector-µSIMD flavours, bit-identical;
* :mod:`repro.workloads.sobel.programs` — the ``sobel_edge`` kernel
  program registered with the workload registry, with a worked authoring
  walkthrough in ``docs/workloads.md``.
"""

from repro.workloads.sobel.stencil import (
    sobel_reference,
    sobel_usimd,
    sobel_vector,
)

__all__ = ["sobel_reference", "sobel_usimd", "sobel_vector"]
