"""Kernel program (timing model) for Sobel edge detection.

Region structure:

``sobel_edge``
    * R1 — the 3×3 gradient stencil: every output row reads three
      adjacent input rows (centre plus the rows above and below, each
      also shifted left and right).  Consecutive iterations re-read two
      of the three rows, so the vector cache sees **neighbour reuse** —
      the access pattern this kernel adds to the suite (the streaming
      benchmarks touch every input element exactly once);
    * R0 — border handling and the edge-strength histogram: per-row
      bookkeeping with a table-driven chain, serial as in every scalar
      region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import AddressExpr, ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.workloads import common
from repro.workloads.registry import register_workload

__all__ = ["SobelParameters", "build_sobel_edge_program"]


@dataclass(frozen=True)
class SobelParameters:
    """Input geometry of the Sobel stencil benchmark."""

    width: int = 128
    height: int = 96
    #: extra scalar work per border/histogram step
    scalar_work: int = 6

    def __post_init__(self) -> None:
        if self.width % 8 or self.height < 3:
            raise ValueError("width must be a multiple of 8 (packed words) "
                             "and height at least 3 rows")


# |Gx| + |Gy| per pixel: the six differences, the doubling shifts, the two
# absolute values (compare + conditional negate) and the saturating clip
_SOBEL_SCALAR_MIX = ((Opcode.SUB, 4), (Opcode.ADD, 6), (Opcode.SHL, 2),
                     (Opcode.CMP, 2), (Opcode.MOV, 1))
_SOBEL_PACKED_MIX = ((Opcode.PSUBW, 4), (Opcode.PADDW, 6), (Opcode.PSHIFT, 3),
                     (Opcode.PMINMAX, 2), (Opcode.UNPACK, 2), (Opcode.PACK, 1))
_SOBEL_VECTOR_MIX = ((Opcode.VSUBW, 4), (Opcode.VADDW, 6), (Opcode.VSHIFT, 3),
                     (Opcode.VLOGICAL, 2), (Opcode.VUNPACK, 2), (Opcode.VPACK, 1))

#: per-row border/histogram work (R0)
_BORDER_WORK_MIX = ((Opcode.ADD, 4), (Opcode.CMP, 2), (Opcode.SHR, 1),
                    (Opcode.AND, 1))


@register_workload("sobel_edge", family="sobel", params=SobelParameters,
                   tiny=SobelParameters(width=32, height=24),
                   description="Sobel edge detection: 2-D stencil with "
                               "neighbour reuse in the vector cache",
                   tags=("mediabench-plus", "image", "stencil"))
def build_sobel_edge_program(flavor: ISAFlavor,
                             params: SobelParameters = SobelParameters()
                             ) -> KernelProgram:
    """Sobel edge-detection program in the requested ISA flavour."""
    space = AddressSpace()
    image = space.allocate("image", (params.height, params.width),
                           element_bytes=1)
    edges = space.allocate("edges", (params.height, params.width),
                           element_bytes=1)
    histogram = space.allocate("histogram", (64,), element_bytes=2)
    border = space.allocate("border", (2 * (params.height + params.width),),
                            element_bytes=1)

    builder = KernelBuilder("sobel_edge", flavor, address_space=space)
    row_bytes = params.width
    inner_rows = params.height - 2
    words_per_row = params.width // 8

    def row_addr(array, row_var, row_shift: int, byte_shift: int = 0) -> AddressExpr:
        return (AddressExpr(base=array.base)
                .with_term(row_var, row_bytes)
                .shifted(row_shift * row_bytes + byte_shift))

    # R1: one output row per iteration from three live input rows
    with builder.region("R1", "3x3 gradient stencil", vectorizable=True):
        with builder.loop(inner_rows, name="row") as row:
            if flavor is ISAFlavor.VECTOR:
                vl = min(16, words_per_row)
                chunks, tail = divmod(words_per_row, vl)

                def emit_stencil_chunk(chunk_vl, term=None, base_bytes=0):
                    builder.setvl(chunk_vl)
                    loaded = []
                    # three rows, plus the left/right-shifted reloads the
                    # unaligned neighbour accesses cause
                    for shift, byte_shift in ((0, 0), (1, 0), (2, 0),
                                              (0, 1), (2, 1)):
                        address = row_addr(image, row, shift,
                                           byte_shift + base_bytes)
                        if term is not None:
                            address = address.with_term(term, chunk_vl * 8)
                        loaded.append(builder.vload(
                            address, vl=chunk_vl, stride_bytes=8,
                            comment=f"vload row+{shift}"))
                    chains = common.emit_vector_mix(
                        builder, _SOBEL_VECTOR_MIX, vl=chunk_vl, seeds=loaded,
                        subwords=4, comment="sobel")
                    out = row_addr(edges, row, 1, base_bytes)
                    if term is not None:
                        out = out.with_term(term, chunk_vl * 8)
                    builder.vstore(out, chains[0], vl=chunk_vl, stride_bytes=8,
                                   comment="vstore edge row")

                with builder.loop(chunks, name="chunk") as chunk:
                    emit_stencil_chunk(vl, term=chunk)
                if tail:
                    # remainder words of a row not word-aligned to the
                    # vector length — same work as the other flavours
                    emit_stencil_chunk(tail, base_bytes=chunks * vl * 8)
            elif flavor is ISAFlavor.USIMD:
                with builder.loop(words_per_row, name="word") as word:
                    loaded = []
                    for shift, byte_shift in ((0, 0), (1, 0), (2, 0),
                                              (0, 1), (2, 1)):
                        address = row_addr(image, row, shift, byte_shift
                                           ).with_term(word, 8)
                        loaded.append(builder.mload(
                            address, comment=f"mload row+{shift}"))
                    chains = common.emit_packed_mix(
                        builder, _SOBEL_PACKED_MIX, seeds=loaded,
                        subwords=4, comment="sobel")
                    builder.mstore(row_addr(edges, row, 1).with_term(word, 8),
                                   chains[0], comment="mstore edge word")
            else:
                with builder.loop(params.width - 2, name="col") as col:
                    loaded = []
                    for shift, byte_shift in ((0, 0), (1, 0), (2, 0),
                                              (0, 2), (2, 2)):
                        address = row_addr(image, row, shift, byte_shift
                                           ).with_term(col, 1)
                        loaded.append(builder.load8(
                            address, comment=f"load row+{shift}"))
                    chains = common.emit_scalar_mix(
                        builder, _SOBEL_SCALAR_MIX, seeds=loaded,
                        comment="sobel")
                    builder.store8(row_addr(edges, row, 1, 1).with_term(col, 1),
                                   chains[0], comment="store edge pixel")

    # R0: border clearing and the edge-strength histogram
    with builder.region("R0", "Border handling and histogram",
                        vectorizable=False):
        common.emit_table_decoder(
            builder, border, histogram, border, count=params.height,
            work_mix=_BORDER_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
            lookups=2, label="histogram")
    return builder.program()
