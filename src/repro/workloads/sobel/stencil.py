"""Functional Sobel gradient magnitude in the three ISA flavours.

``out = clip(|Gx| + |Gy|, 0, 255)`` with the standard 3×3 Sobel kernels;
border pixels are zero.  All arithmetic fits 16 bits (``|Gx| + |Gy| <=
2040``), so the packed flavours are exact and all three produce identical
bytes (asserted by the tests):

* :func:`sobel_reference` — NumPy int64 shifts and sums;
* :func:`sobel_usimd` — packed 16-bit arithmetic (``paddw`` / ``psubw`` /
  ``psllw`` / ``pabsw`` / ``pminsw``) over words of four pixels, three
  input rows live at a time;
* :func:`sobel_vector` — the same row arithmetic with whole rows held as
  vector-register values (stacks of packed words).
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed, vectorops

__all__ = ["sobel_reference", "sobel_usimd", "sobel_vector"]


def _check(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError("expected a 2-D grey-scale image")
    if image.shape[0] < 3 or image.shape[1] < 3:
        raise ValueError("the 3x3 stencil needs at least a 3x3 image")
    return image


def sobel_reference(image: np.ndarray) -> np.ndarray:
    """Reference Sobel magnitude (uint8, zero border)."""
    image = _check(image).astype(np.int64)
    top, mid, bot = image[:-2], image[1:-1], image[2:]
    gx = ((top[:, 2:] - top[:, :-2])
          + 2 * (mid[:, 2:] - mid[:, :-2])
          + (bot[:, 2:] - bot[:, :-2]))
    gy = ((bot[:, :-2] + 2 * bot[:, 1:-1] + bot[:, 2:])
          - (top[:, :-2] + 2 * top[:, 1:-1] + top[:, 2:]))
    out = np.zeros(image.shape, dtype=np.uint8)
    out[1:-1, 1:-1] = np.minimum(np.abs(gx) + np.abs(gy), 255).astype(np.uint8)
    return out


def _row_magnitude(top: np.ndarray, mid: np.ndarray, bot: np.ndarray,
                   add, sub, shift_left, absolute, clip255) -> np.ndarray:
    """One output row's interior from three int16 input rows (any backend)."""
    left, centre, right = slice(0, -2), slice(1, -1), slice(2, None)
    gx = add(add(sub(top[right], top[left]),
                 shift_left(sub(mid[right], mid[left]))),
             sub(bot[right], bot[left]))
    gy = sub(add(add(bot[left], shift_left(bot[centre])), bot[right]),
             add(add(top[left], shift_left(top[centre])), top[right]))
    return clip255(add(absolute(gx), absolute(gy)))


def _words(flat: np.ndarray) -> np.ndarray:
    """Pad a row slice to whole packed words and pack it."""
    flat = np.asarray(flat, dtype=np.int16)
    pad = (-flat.shape[0]) % packed.LANES_16
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, np.int16)])
    return packed.to_packed(flat, packed.LANES_16)


def _backend(pad_to: int, map1, map2):
    """The five Sobel row callbacks over packed int16 words.

    The two packed flavours share every operation; they differ only in
    how a word-level op is lifted onto the flavour's value shape —
    ``map1``/``map2`` apply an op to one/two operands (µSIMD: directly,
    word by word; vector: across the stacked words via ``vmap``/
    ``vmap2``).
    """

    def lift2(op):
        def apply(a, b):
            return packed.from_packed(map2(op, _words(a), _words(b)))[:pad_to]
        return apply

    def lift1(op):
        def apply(a):
            return packed.from_packed(map1(op, _words(a)))[:pad_to]
        return apply

    return {
        "add": lift2(packed.paddw),
        "sub": lift2(packed.psubw),
        "shift_left": lift1(lambda w: packed.psllw(w, 1)),
        "absolute": lift1(packed.pabsw),
        "clip255": lift1(lambda w: packed.pminsw(
            w, np.full_like(w, 255))),
    }


def _packed_backend(pad_to: int):
    """Packed-op callbacks operating on padded int16 row slices."""
    return _backend(pad_to,
                    map1=lambda op, a: op(a),
                    map2=lambda op, a, b: op(a, b))


def sobel_usimd(image: np.ndarray) -> np.ndarray:
    """µSIMD Sobel: packed 16-bit row arithmetic, three rows live."""
    image = _check(image)
    height, width = image.shape
    rows = image.astype(np.int16)
    ops = _packed_backend(width - 2)
    out = np.zeros((height, width), dtype=np.uint8)
    for r in range(1, height - 1):
        magnitude = _row_magnitude(rows[r - 1], rows[r], rows[r + 1], **ops)
        out[r, 1:-1] = magnitude.astype(np.uint8)
    return out


def _vector_backend(pad_to: int):
    """The packed callbacks applied across stacked words (vector values)."""
    return _backend(pad_to, map1=vectorops.vmap, map2=vectorops.vmap2)


def sobel_vector(image: np.ndarray) -> np.ndarray:
    """Vector-µSIMD Sobel: whole rows as vector values, three rows live."""
    image = _check(image)
    height, width = image.shape
    rows = image.astype(np.int16)
    ops = _vector_backend(width - 2)
    out = np.zeros((height, width), dtype=np.uint8)
    for r in range(1, height - 1):
        magnitude = _row_magnitude(rows[r - 1], rows[r], rows[r + 1], **ops)
        out[r, 1:-1] = magnitude.astype(np.uint8)
    return out
