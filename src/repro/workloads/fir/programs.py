"""Kernel program (timing model) for the FIR filter bank.

Region structure:

``fir_bank``
    * R1 — the filter bank proper: for every band and every output
      sample, a ``taps``-long dot product of the coefficient vector with
      a sliding window of the input.  Unlike the suite's streaming
      kernels, the memory behaviour is dominated by **long strided
      streams**: every band re-walks the whole input, consecutive
      windows overlap by all but one sample, and the interleaved output
      is written with a ``bands``-element stride;
    * R0 — gain normalisation (an AGC first-order recurrence over the
      output) and stream bookkeeping, serial as in every scalar region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.workloads import common
from repro.workloads.registry import register_workload

__all__ = ["FirBankParameters", "build_fir_bank_program"]


@dataclass(frozen=True)
class FirBankParameters:
    """Input geometry of the FIR filter-bank benchmark."""

    #: filters in the bank (MPEG-audio style analysis uses 32; reduced)
    bands: int = 8
    #: taps per filter (multiple of four: packed-word alignment)
    taps: int = 32
    #: output samples computed per band
    samples: int = 480
    #: extra scalar work per output sample in the normalisation pass
    scalar_work: int = 10

    def __post_init__(self) -> None:
        if self.bands < 1:
            raise ValueError("need at least one band")
        if self.taps < 4 or self.taps % 4:
            raise ValueError("taps must be a positive multiple of 4")
        if self.samples < 1:
            raise ValueError("need at least one output sample")


_AGC_WORK_MIX = ((Opcode.MUL, 1), (Opcode.ADD, 2), (Opcode.SHR, 1),
                 (Opcode.CMP, 1))


@register_workload("fir_bank", family="fir", params=FirBankParameters,
                   tiny=FirBankParameters(bands=2, taps=16, samples=48),
                   description="Audio FIR filter bank: long strided streams, "
                               "packed multiply-accumulate",
                   tags=("mediabench-plus", "speech", "streaming"))
def build_fir_bank_program(flavor: ISAFlavor,
                           params: FirBankParameters = FirBankParameters()
                           ) -> KernelProgram:
    """FIR filter-bank program in the requested ISA flavour."""
    space = AddressSpace()
    stream = space.allocate("stream", (params.samples + params.taps,),
                            element_bytes=2)
    coeffs = space.allocate("coeffs", (params.bands, params.taps),
                            element_bytes=2)
    outputs = space.allocate("outputs", (params.samples, params.bands),
                             element_bytes=8)
    gains = space.allocate("gains", (params.bands,), element_bytes=8)

    builder = KernelBuilder("fir_bank", flavor, address_space=space)
    taps_bytes = params.taps * 2
    out_row = params.bands * 8

    # R1: every band walks the whole input stream again (long streams); the
    # window of output n starts at sample n (overlap of taps-1 samples)
    with builder.region("R1", "FIR filter bank", vectorizable=True):
        with builder.loop(params.bands, name="band") as band:
            taps_base = builder.addr(coeffs, (band, taps_bytes))
            with builder.loop(params.samples, name="out") as out:
                window = builder.addr(stream, (out, 2))
                common.emit_dot_product(builder, stream, window,
                                        coeffs, taps_base, params.taps,
                                        label="fir")
                builder.store(builder.addr(outputs, (out, out_row), (band, 8)),
                              builder.iop(Opcode.MOV, comment="fir result"),
                              comment="store interleaved output")

    # R0: AGC recurrence over the interleaved output plus bookkeeping
    with builder.region("R0", "Gain normalisation", vectorizable=False):
        common.emit_recursive_filter(
            builder, outputs, outputs, samples=params.samples, taps=2,
            work_mix=_AGC_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
            element_bytes=8, label="agc")
        common.emit_bitstream_encoder(
            builder, outputs, gains, outputs, count=params.bands * 8,
            work_mix=_AGC_WORK_MIX, lookups=1, label="gain_pack")
    return builder.program()
