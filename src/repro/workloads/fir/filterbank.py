"""Functional FIR filter bank in the three ISA flavours.

``out[band, n] = sum_t coeffs[band, t] * x[n + t]`` — exact 64-bit integer
accumulation of 16-bit samples and taps, so all three flavours produce
identical values (asserted by the tests):

* :func:`fir_bank_reference` — NumPy sliding-window dot products (int64);
* :func:`fir_bank_usimd` — ``pmaddwd`` over packed words of four taps,
  exactly how the MMX kernel walks the tap vector;
* :func:`fir_bank_vector` — vector multiply-accumulate into a packed
  accumulator (up to ``max_vl`` packed words per VMAC), reduced by SUM,
  matching the hardware reduction path.
"""

from __future__ import annotations

import numpy as np

from repro.isa import packed, vectorops

__all__ = ["fir_bank_reference", "fir_bank_usimd", "fir_bank_vector"]


def _check(samples: np.ndarray, coeffs: np.ndarray) -> tuple:
    samples = np.asarray(samples)
    coeffs = np.asarray(coeffs)
    if samples.ndim != 1:
        raise ValueError("expected a 1-D sample stream")
    if coeffs.ndim != 2:
        raise ValueError("expected a (bands, taps) coefficient matrix")
    taps = coeffs.shape[1]
    if taps % packed.LANES_16:
        raise ValueError(f"taps must be a multiple of {packed.LANES_16} "
                         f"(packed-word alignment)")
    if samples.shape[0] < taps:
        raise ValueError("sample stream shorter than the tap window")
    return samples, coeffs, samples.shape[0] - taps + 1


def fir_bank_reference(samples: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Reference filter bank: exact int64 dot products, shape (outputs, bands)."""
    samples, coeffs, outputs = _check(samples, coeffs)
    x = samples.astype(np.int64)
    h = coeffs.astype(np.int64)
    taps = h.shape[1]
    windows = np.lib.stride_tricks.sliding_window_view(x, taps)[:outputs]
    return windows @ h.T  # (outs, taps) @ (taps, bands)


def fir_bank_usimd(samples: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """µSIMD filter bank: ``pmaddwd`` over packed words of four 16-bit taps."""
    samples, coeffs, outputs = _check(samples, coeffs)
    x = samples.astype(np.int16)
    out = np.zeros((outputs, coeffs.shape[0]), dtype=np.int64)
    for band, taps_row in enumerate(coeffs.astype(np.int16)):
        h_words = packed.to_packed(taps_row, packed.LANES_16)
        for n in range(outputs):
            window = packed.to_packed(x[n:n + taps_row.shape[0]], packed.LANES_16)
            total = 0
            for index in range(h_words.shape[0]):
                pair_sums = packed.pmaddwd(window[index], h_words[index])
                total += int(pair_sums.astype(np.int64).sum())
            out[n, band] = total
    return out


def fir_bank_vector(samples: np.ndarray, coeffs: np.ndarray,
                    max_vl: int = 16) -> np.ndarray:
    """Vector-µSIMD filter bank: VMAC into a packed accumulator, then SUM."""
    samples, coeffs, outputs = _check(samples, coeffs)
    x = samples.astype(np.int64)
    out = np.zeros((outputs, coeffs.shape[0]), dtype=np.int64)
    for band, taps_row in enumerate(coeffs.astype(np.int64)):
        h_words = taps_row.reshape(-1, packed.LANES_16)
        for n in range(outputs):
            window = x[n:n + taps_row.shape[0]].reshape(-1, packed.LANES_16)
            acc = vectorops.accumulator_zero(packed.LANES_16)
            for start in range(0, h_words.shape[0], max_vl):
                stop = min(start + max_vl, h_words.shape[0])
                acc = vectorops.vmac_accumulate(acc, window[start:stop],
                                                h_words[start:stop])
            out[n, band] = vectorops.accumulator_sum(acc)
    return out
