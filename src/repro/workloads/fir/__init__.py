"""FIR filter bank (audio analysis front-end).

A bank of FIR filters applied to one input stream — the shape of audio
equalisers, sub-band coders (MP2/MPEG audio polyphase analysis) and
feature front-ends.  Every output sample is an independent dot product of
the tap vector with a window of the input, so the kernel is embarrassingly
data-parallel, but unlike the paper's streaming kernels it reads **long
strided streams**: each band walks the whole input again, and the windows
of consecutive outputs overlap by all but one sample.

* :mod:`repro.workloads.fir.filterbank` — functional NumPy reference plus
  µSIMD (``pmaddwd``) and Vector-µSIMD (packed-accumulator ``VMAC``)
  flavours, bit-identical;
* :mod:`repro.workloads.fir.programs` — the ``fir_bank`` kernel program
  registered with the workload registry.
"""

from repro.workloads.fir.filterbank import (
    fir_bank_reference,
    fir_bank_usimd,
    fir_bank_vector,
)

__all__ = ["fir_bank_reference", "fir_bank_usimd", "fir_bank_vector"]
