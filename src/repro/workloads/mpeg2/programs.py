"""Kernel programs (timing models) for the MPEG-2 encoder and decoder.

Region structure (Table 1 of the paper):

MPEG-2 encoder
    * R1 — motion estimation: exhaustive SAD search over a ±radius window
      for every 16×16 macroblock of every P frame.  The vector flavour is
      the Figure-4 kernel per candidate (two packed accumulators, vector
      loads whose stride is the image width); the µSIMD flavour is the
      ~172-operation MMX loop; the scalar flavour the pixel-by-pixel loop.
    * R2 — forward DCT of the residual blocks
    * R3 — inverse DCT (the encoder reconstructs reference frames)
    * R0 — variable-length coding, quantiser control and bit-stream output

MPEG-2 decoder
    * R1 — form component prediction (motion-compensated copy / average)
    * R2 — inverse DCT
    * R3 — add block (saturating residual add)
    * R0 — variable-length decoding and header/bit-stream handling

The non-unit-stride vector memory accesses of the motion-estimation and
prediction kernels are the reason mpeg2_enc degrades so much under realistic
memory in the paper's Figure 5(b); they appear here as ``stride_bytes`` equal
to the frame width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace, ArraySpec
from repro.workloads import common
from repro.workloads.registry import register_workload

__all__ = ["Mpeg2Parameters", "build_mpeg2_enc_program", "build_mpeg2_dec_program"]


@dataclass(frozen=True)
class Mpeg2Parameters:
    """Input geometry of the MPEG-2 benchmarks (reduced Mediabench stand-in)."""

    width: int = 64
    height: int = 64
    #: number of predicted (P) frames processed
    frames: int = 2
    #: motion search radius in pixels (full search over (2r+1)^2 candidates)
    search_radius: int = 1
    #: entropy symbols per 8×8 block
    symbols_per_block: int = 22
    #: extra scalar work per symbol (rate control, header bookkeeping)
    scalar_work: int = 30
    #: header/motion-vector/CBP decoding symbols per macroblock (decoder R0)
    mb_overhead_symbols: int = 56
    #: extra scalar work per decoder symbol (VLD escape handling, MV reconstruction)
    decoder_scalar_work: int = 26

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ValueError("MPEG-2 dimensions must be multiples of 16")
        if self.search_radius < 0:
            raise ValueError("search radius cannot be negative")

    @property
    def macroblocks(self) -> int:
        return (self.width // 16) * (self.height // 16)

    @property
    def blocks_per_frame(self) -> int:
        return (self.width // 8) * (self.height // 8)

    @property
    def candidates(self) -> int:
        return (2 * self.search_radius + 1) ** 2


# DCT mixes are shared with the JPEG benchmark (same transform).
from repro.workloads.jpeg.programs import (  # noqa: E402  (intentional reuse)
    _DCT_SCALAR_MIX, _DCT_PACKED_MIX, _DCT_VECTOR_MIX,
    _VLD_WORK_MIX, _HUFFMAN_WORK_MIX,
)

# form component prediction: copy / rounded average per byte
_PREDICT_SCALAR_MIX = ((Opcode.ADD, 3), (Opcode.SHR, 1), (Opcode.MOV, 1))
_PREDICT_PACKED_MIX = ((Opcode.PAVGB, 2), (Opcode.PLOGICAL, 1))
_PREDICT_VECTOR_MIX = ((Opcode.VPAVGB, 2), (Opcode.VLOGICAL, 1))

# add block: unpack, saturating add of the residual, pack
_ADDBLOCK_SCALAR_MIX = ((Opcode.ADD, 2), (Opcode.CMP, 1), (Opcode.MOV, 1))
_ADDBLOCK_PACKED_MIX = ((Opcode.UNPACK, 2), (Opcode.PADDW, 2), (Opcode.PACK, 1))
_ADDBLOCK_VECTOR_MIX = ((Opcode.VUNPACK, 2), (Opcode.VADDW, 2), (Opcode.VPACK, 1))


# ---------------------------------------------------------------------------
# motion estimation emitters
# ---------------------------------------------------------------------------

def _emit_motion_estimation(builder: KernelBuilder, current: ArraySpec,
                            reference: ArraySpec, best: ArraySpec,
                            params: Mpeg2Parameters) -> None:
    """Full-search motion estimation over every macroblock of one frame."""
    mb_rows = params.height // 16
    mb_cols = params.width // 16
    row_stride = current.row_stride_bytes()
    window = 2 * params.search_radius + 1

    with builder.loop(mb_rows, name="mby") as mby:
        with builder.loop(mb_cols, name="mbx") as mbx:
            with builder.loop(window, name="dy") as dy:
                with builder.loop(window, name="dx") as dx:
                    cur_addr = builder.addr(current, (mby, 16 * row_stride), (mbx, 16))
                    ref_addr = builder.addr(reference, (mby, 16 * row_stride), (mbx, 16),
                                            (dy, row_stride), (dx, 1),
                                            offset=-params.search_radius * (row_stride + 1))
                    if builder.flavor is ISAFlavor.VECTOR:
                        _emit_sad_vector(builder, cur_addr, ref_addr, row_stride)
                    elif builder.flavor is ISAFlavor.USIMD:
                        _emit_sad_usimd(builder, cur_addr, ref_addr, row_stride)
                    else:
                        _emit_sad_scalar(builder, cur_addr, ref_addr, row_stride)
                    # best-SAD tracking (compare and conditional update)
                    builder.iop(Opcode.CMP, comment="sad < best?")
                    builder.iop(Opcode.MOV, comment="update best")
            builder.store(builder.addr(best, (mby, 8 * mb_cols), (mbx, 8)),
                          builder.iop(Opcode.MOV, comment="best vector"),
                          comment="store motion vector")


def _emit_sad_vector(builder: KernelBuilder, cur_addr, ref_addr, row_stride: int) -> None:
    """One Figure-4 style vector SAD of a 16×16 candidate (VL=16, two columns)."""
    builder.setvs(row_stride // 8)
    builder.setvl(16)
    acc1 = builder.acc_clear("A1=0")
    acc2 = builder.acc_clear("A2=0")
    v1 = builder.vload(cur_addr, vl=16, stride_bytes=row_stride, comment="V1=cur[:,0:8]")
    v2 = builder.vload(ref_addr, vl=16, stride_bytes=row_stride, comment="V2=ref[:,0:8]")
    v3 = builder.vload(cur_addr.shifted(8), vl=16, stride_bytes=row_stride,
                       comment="V3=cur[:,8:16]")
    v4 = builder.vload(ref_addr.shifted(8), vl=16, stride_bytes=row_stride,
                       comment="V4=ref[:,8:16]")
    builder.vsad(acc1, v1, v2, vl=16, comment="A1=SAD(V1,V2)")
    builder.vsad(acc2, v3, v4, vl=16, comment="A2=SAD(V3,V4)")
    r5 = builder.vsum(acc1, comment="R5=SUM(A1)")
    r6 = builder.vsum(acc2, comment="R6=SUM(A2)")
    builder.iop(Opcode.ADD, srcs=(r5, r6), comment="sad=R5+R6")


def _emit_sad_usimd(builder: KernelBuilder, cur_addr, ref_addr, row_stride: int) -> None:
    """The MMX SAD loop over the sixteen rows of a 16×16 candidate."""
    total = builder.iop(Opcode.MOV, comment="sad=0")
    with builder.loop(16, name="sadrow") as row:
        left_cur = builder.mload(cur_addr.with_term(row, row_stride), comment="cur lo")
        left_ref = builder.mload(ref_addr.with_term(row, row_stride), comment="ref lo")
        right_cur = builder.mload(cur_addr.with_term(row, row_stride).shifted(8),
                                  comment="cur hi")
        right_ref = builder.mload(ref_addr.with_term(row, row_stride).shifted(8),
                                  comment="ref hi")
        left = builder.psad(left_cur, left_ref, comment="psadbw lo")
        right = builder.psad(right_cur, right_ref, comment="psadbw hi")
        builder.iop(Opcode.ADD, srcs=(total, left), comment="sad += lo")
        total = builder.iop(Opcode.ADD, srcs=(total, right), comment="sad += hi")
        builder.iop(Opcode.ADD, comment="advance pointers")


def _emit_sad_scalar(builder: KernelBuilder, cur_addr, ref_addr, row_stride: int) -> None:
    """Pixel-by-pixel SAD of a 16×16 candidate (the plain VLIW code)."""
    total = builder.iop(Opcode.MOV, comment="sad=0")
    with builder.loop(16, name="sadrow") as row:
        with builder.loop(16, name="sadcol") as col:
            cur = builder.load8(cur_addr.with_term(row, row_stride).with_term(col, 1),
                                comment="cur pixel")
            ref = builder.load8(ref_addr.with_term(row, row_stride).with_term(col, 1),
                                comment="ref pixel")
            diff = builder.iop(Opcode.SUB, srcs=(cur, ref), comment="diff")
            builder.iop(Opcode.CMP, srcs=(diff,), comment="abs test")
            absolute = builder.iop(Opcode.SUB, srcs=(diff,), comment="abs")
            total = builder.iop(Opcode.ADD, srcs=(total, absolute), comment="sad +=")


# ---------------------------------------------------------------------------
# encoder
# ---------------------------------------------------------------------------

@register_workload("mpeg2_enc", family="mpeg2", params=Mpeg2Parameters,
                   tiny=Mpeg2Parameters(width=32, height=32, frames=1,
                                        search_radius=1),
                   description="MPEG-2 encoder: motion estimation, "
                               "forward/inverse DCT",
                   tags=("mediabench", "mediabench-plus", "video"))
def build_mpeg2_enc_program(flavor: ISAFlavor,
                            params: Mpeg2Parameters = Mpeg2Parameters()) -> KernelProgram:
    """MPEG-2 encoder program in the requested ISA flavour."""
    space = AddressSpace()
    h, w = params.height, params.width
    current = space.allocate("current", (h, w), element_bytes=1)
    reference = space.allocate("reference", (h, w), element_bytes=1)
    best = space.allocate("motion_vectors", (params.macroblocks, 8), element_bytes=1)
    residual = space.allocate("residual", (h, w), element_bytes=2)
    coeffs = space.allocate("coeffs", (h, w), element_bytes=2)
    recon = space.allocate("recon", (h, w), element_bytes=2)
    symbols = space.allocate("symbols",
                             (params.frames * params.blocks_per_frame
                              * params.symbols_per_block,), element_bytes=1)
    vlc_table = space.allocate("vlc_table", (512,), element_bytes=4)
    bitstream = space.allocate("bitstream", (symbols.shape[0],), element_bytes=1)

    builder = KernelBuilder("mpeg2_enc", flavor, address_space=space)

    with builder.loop(params.frames, name="frame", control=True):
        # R1: motion estimation over the whole frame
        with builder.region("R1", "Motion estimation", vectorizable=True):
            _emit_motion_estimation(builder, current, reference, best, params)

        # R2: forward DCT of the residual macroblocks
        with builder.region("R2", "Forward DCT", vectorizable=True):
            if flavor is ISAFlavor.SCALAR:
                common.emit_block_transform_scalar(builder, residual, coeffs,
                                                   params.blocks_per_frame,
                                                   _DCT_SCALAR_MIX, label="fdct")
            elif flavor is ISAFlavor.USIMD:
                common.emit_block_transform_usimd(builder, residual, coeffs,
                                                  params.blocks_per_frame,
                                                  _DCT_PACKED_MIX, label="fdct")
            else:
                common.emit_block_transform_vector(builder, residual, coeffs,
                                                   params.blocks_per_frame,
                                                   _DCT_VECTOR_MIX, label="fdct")

        # R3: inverse DCT (reconstruction of the reference frame)
        with builder.region("R3", "Inverse DCT", vectorizable=True):
            if flavor is ISAFlavor.SCALAR:
                common.emit_block_transform_scalar(builder, coeffs, recon,
                                                   params.blocks_per_frame,
                                                   _DCT_SCALAR_MIX, label="idct")
            elif flavor is ISAFlavor.USIMD:
                common.emit_block_transform_usimd(builder, coeffs, recon,
                                                  params.blocks_per_frame,
                                                  _DCT_PACKED_MIX, label="idct")
            else:
                common.emit_block_transform_vector(builder, coeffs, recon,
                                                   params.blocks_per_frame,
                                                   _DCT_VECTOR_MIX, label="idct")

        # R0: VLC coding, macroblock mode decisions and rate control
        with builder.region("R0", "VLC coding and rate control", vectorizable=False):
            common.emit_bitstream_encoder(
                builder, symbols, vlc_table, bitstream,
                count=params.blocks_per_frame * params.symbols_per_block,
                work_mix=_HUFFMAN_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
                lookups=2, label="vlc")
            common.emit_bitstream_encoder(
                builder, symbols, vlc_table, bitstream,
                count=params.macroblocks * 24,
                work_mix=_HUFFMAN_WORK_MIX + ((Opcode.ADD, params.scalar_work),),
                lookups=2, label="mbdecision")
    return builder.program()


# ---------------------------------------------------------------------------
# decoder
# ---------------------------------------------------------------------------

@register_workload("mpeg2_dec", family="mpeg2", params=Mpeg2Parameters,
                   tiny=Mpeg2Parameters(width=32, height=32, frames=1,
                                        search_radius=1),
                   description="MPEG-2 decoder: prediction, inverse DCT, "
                               "add block",
                   tags=("mediabench", "mediabench-plus", "video"))
def build_mpeg2_dec_program(flavor: ISAFlavor,
                            params: Mpeg2Parameters = Mpeg2Parameters()) -> KernelProgram:
    """MPEG-2 decoder program in the requested ISA flavour."""
    space = AddressSpace()
    h, w = params.height, params.width
    reference = space.allocate("reference", (h, w), element_bytes=1)
    prediction = space.allocate("prediction", (h, w), element_bytes=1)
    residual = space.allocate("residual", (h, w), element_bytes=2)
    coeffs = space.allocate("coeffs", (h, w), element_bytes=2)
    output = space.allocate("output", (h, w), element_bytes=1)
    symbols = space.allocate("symbols",
                             (params.frames * params.blocks_per_frame
                              * params.symbols_per_block,), element_bytes=1)
    vld_table = space.allocate("vld_table", (512,), element_bytes=4)
    bitstream = space.allocate("bitstream", (symbols.shape[0],), element_bytes=1)

    builder = KernelBuilder("mpeg2_dec", flavor, address_space=space)

    with builder.loop(params.frames, name="frame", control=True):
        # R0: variable length decoding of all coefficients plus the
        # macroblock-layer work (headers, motion vectors, CBP reconstruction)
        with builder.region("R0", "VLD and bit-stream handling", vectorizable=False):
            common.emit_table_decoder(
                builder, bitstream, vld_table, symbols,
                count=params.blocks_per_frame * params.symbols_per_block,
                work_mix=_VLD_WORK_MIX + ((Opcode.ADD, params.decoder_scalar_work),),
                lookups=2, label="vld")
            common.emit_table_decoder(
                builder, bitstream, vld_table, symbols,
                count=params.macroblocks * params.mb_overhead_symbols,
                work_mix=_VLD_WORK_MIX + ((Opcode.ADD, params.decoder_scalar_work),),
                lookups=3, label="mbheader")

        # R1: form component prediction for every macroblock
        with builder.region("R1", "Form component prediction", vectorizable=True):
            _emit_prediction(builder, reference, prediction, params)

        # R2: inverse DCT of the residual blocks
        with builder.region("R2", "Inverse DCT", vectorizable=True):
            if flavor is ISAFlavor.SCALAR:
                common.emit_block_transform_scalar(builder, coeffs, residual,
                                                   params.blocks_per_frame,
                                                   _DCT_SCALAR_MIX, label="idct")
            elif flavor is ISAFlavor.USIMD:
                common.emit_block_transform_usimd(builder, coeffs, residual,
                                                  params.blocks_per_frame,
                                                  _DCT_PACKED_MIX, label="idct")
            else:
                common.emit_block_transform_vector(builder, coeffs, residual,
                                                   params.blocks_per_frame,
                                                   _DCT_VECTOR_MIX, label="idct")

        # R3: add block (prediction + residual with saturation)
        with builder.region("R3", "Add block", vectorizable=True):
            inputs = [prediction, residual]
            outputs = [output]
            if flavor is ISAFlavor.SCALAR:
                common.emit_elementwise_scalar(builder, inputs, outputs, h, w,
                                               _ADDBLOCK_SCALAR_MIX, label="addblk")
            elif flavor is ISAFlavor.USIMD:
                common.emit_elementwise_usimd(builder, inputs, outputs, h, w,
                                              _ADDBLOCK_PACKED_MIX, label="addblk")
            else:
                common.emit_elementwise_vector(builder, inputs, outputs, h, w,
                                               _ADDBLOCK_VECTOR_MIX,
                                               vl=min(16, w // 8), label="addblk")
    return builder.program()


def _emit_prediction(builder: KernelBuilder, reference: ArraySpec,
                     prediction: ArraySpec, params: Mpeg2Parameters) -> None:
    """Motion-compensated prediction of every macroblock of one frame.

    The vector flavour reads each 16-pixel-wide macroblock column with
    vector loads whose stride is the frame width — the same non-unit-stride
    pattern as motion estimation, but executed once per macroblock instead
    of once per search candidate.
    """
    mb_rows = params.height // 16
    mb_cols = params.width // 16
    row_stride = reference.row_stride_bytes()
    with builder.loop(mb_rows, name="pmby") as mby:
        with builder.loop(mb_cols, name="pmbx") as mbx:
            ref_addr = builder.addr(reference, (mby, 16 * row_stride), (mbx, 16))
            pred_addr = builder.addr(prediction, (mby, 16 * row_stride), (mbx, 16))
            if builder.flavor is ISAFlavor.VECTOR:
                builder.setvs(row_stride // 8)
                builder.setvl(16)
                for half in range(2):
                    loaded = builder.vload(ref_addr.shifted(8 * half), vl=16,
                                           stride_bytes=row_stride,
                                           comment="vload ref half")
                    averaged = builder.vop(Opcode.VPAVGB, loaded, vl=16,
                                           comment="half-pel average")
                    builder.vstore(pred_addr.shifted(8 * half), averaged, vl=16,
                                   stride_bytes=row_stride, comment="vstore pred half")
            elif builder.flavor is ISAFlavor.USIMD:
                with builder.loop(16, name="prow") as row:
                    for half in range(2):
                        loaded = builder.mload(
                            ref_addr.with_term(row, row_stride).shifted(8 * half),
                            comment="mload ref")
                        averaged = builder.simd(Opcode.PAVGB, loaded,
                                                comment="half-pel average")
                        builder.mstore(
                            pred_addr.with_term(row, row_stride).shifted(8 * half),
                            averaged, comment="mstore pred")
            else:
                with builder.loop(16, name="prow") as row:
                    with builder.loop(16, name="pcol") as col:
                        value = builder.load8(
                            ref_addr.with_term(row, row_stride).with_term(col, 1),
                            comment="load ref pixel")
                        chains = common.emit_scalar_mix(builder, _PREDICT_SCALAR_MIX,
                                                        seeds=[value], comment="predict")
                        builder.store8(
                            pred_addr.with_term(row, row_stride).with_term(col, 1),
                            chains[0], comment="store pred pixel")
