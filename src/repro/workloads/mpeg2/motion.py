"""Motion estimation: sum-of-absolute-differences kernels and full search.

This is the paper's running example (the ``dist1`` function of
``mpeg2encode``).  The module provides:

* functional SAD in three flavours — :func:`sad_block_reference` (NumPy),
  :func:`sad_block_usimd` (one packed word of eight pixels per operation)
  and :func:`sad_block_vector` (packed accumulators over whole vector
  registers, the MOM formulation) — all bit-identical;
* :func:`full_search_reference`, an exhaustive block-matching search used by
  the functional tests and the examples to show the synthetic video's true
  motion is recovered;
* :func:`build_sad_kernel_program` — the Figure-4 kernel as a schedulable
  program: two 8×16-pixel blocks, vector length 8, stride equal to the image
  width, two packed accumulators and a final reduction, 16 operations in
  total (the µSIMD version of the same computation takes ~172 operations,
  which :func:`build_sad_kernel_program` reproduces when asked for the
  µSIMD flavour).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.isa import packed, vectorops
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace

__all__ = [
    "sad_block_reference",
    "sad_block_usimd",
    "sad_block_vector",
    "full_search_reference",
    "build_sad_kernel_program",
]


def sad_block_reference(current: np.ndarray, reference: np.ndarray) -> int:
    """Reference SAD between two equally shaped uint8 blocks."""
    current = np.asarray(current, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    if current.shape != reference.shape:
        raise ValueError("SAD operands must have the same shape")
    return int(np.abs(current - reference).sum())


def sad_block_usimd(current: np.ndarray, reference: np.ndarray) -> int:
    """µSIMD SAD: one ``psadbw`` per packed word of eight pixels, summed scalar."""
    current = np.asarray(current, dtype=np.uint8)
    reference = np.asarray(reference, dtype=np.uint8)
    if current.shape != reference.shape:
        raise ValueError("SAD operands must have the same shape")
    if current.shape[-1] % packed.LANES_8:
        raise ValueError("block width must be a multiple of 8 pixels")
    total = 0
    for row_cur, row_ref in zip(current.reshape(-1, current.shape[-1]),
                                reference.reshape(-1, reference.shape[-1])):
        cur_words = packed.to_packed(row_cur, packed.LANES_8)
        ref_words = packed.to_packed(row_ref, packed.LANES_8)
        total += int(packed.psadbw(cur_words, ref_words).sum())
    return total


def sad_block_vector(current: np.ndarray, reference: np.ndarray,
                     max_vl: int = 8) -> int:
    """Vector-µSIMD SAD: packed accumulators over vector registers of rows.

    Each vector element is one packed word of eight pixels; a vector SAD
    operation accumulates the absolute byte differences of up to ``max_vl``
    rows into the packed accumulator, and a final ``SUM`` reduces it — the
    exact structure of the Figure-4 kernel.
    """
    current = np.asarray(current, dtype=np.uint8)
    reference = np.asarray(reference, dtype=np.uint8)
    if current.shape != reference.shape:
        raise ValueError("SAD operands must have the same shape")
    rows, cols = current.shape
    if cols % packed.LANES_8:
        raise ValueError("block width must be a multiple of 8 pixels")
    words_per_row = cols // packed.LANES_8
    total = 0
    for word_col in range(words_per_row):
        sl = slice(word_col * 8, word_col * 8 + 8)
        acc = vectorops.accumulator_zero()
        for start in range(0, rows, max_vl):
            stop = min(start + max_vl, rows)
            cur_vec = current[start:stop, sl]
            ref_vec = reference[start:stop, sl]
            acc = vectorops.vsad_accumulate(acc, cur_vec, ref_vec)
        total += vectorops.accumulator_sum(acc)
    return total


def full_search_reference(reference_frame: np.ndarray, current_frame: np.ndarray,
                          mb_row: int, mb_col: int, radius: int,
                          block: Tuple[int, int] = (16, 16)) -> Tuple[Tuple[int, int], int]:
    """Exhaustive block-matching search around ``(mb_row, mb_col)``.

    Returns ``((dy, dx), best_sad)`` for the best match of the current
    macroblock inside the ``±radius`` search window of the reference frame.
    """
    bh, bw = block
    height, width = current_frame.shape
    cur = current_frame[mb_row:mb_row + bh, mb_col:mb_col + bw]
    best: Optional[Tuple[Tuple[int, int], int]] = None
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            y = mb_row + dy
            x = mb_col + dx
            if y < 0 or x < 0 or y + bh > height or x + bw > width:
                continue
            candidate = reference_frame[y:y + bh, x:x + bw]
            sad = sad_block_reference(cur, candidate)
            if best is None or sad < best[1] or (sad == best[1] and (dy, dx) < best[0]):
                best = ((dy, dx), sad)
    if best is None:
        raise ValueError("search window is empty; check the block position")
    return best


def build_sad_kernel_program(flavor: ISAFlavor = ISAFlavor.VECTOR,
                             image_width: int = 64) -> KernelProgram:
    """The Figure-4 ``dist1`` kernel: SAD of one 8×16-pixel block pair.

    The vector flavour is the 16-operation listing of the paper (two vector
    registers per block because the 64-bit words only cover 8 of the 16
    columns, stride = image width, two packed accumulators).  The µSIMD
    flavour is the classic MMX loop over the 16 block rows (about 172
    operations including address updates and loop control), and the scalar
    flavour the pixel-by-pixel double loop.
    """
    space = AddressSpace()
    current = space.allocate("current", (16, image_width), element_bytes=1)
    reference = space.allocate("reference", (16, image_width), element_bytes=1)
    result = space.allocate("sad_result", (1,), element_bytes=8)
    row_stride = current.row_stride_bytes()

    builder = KernelBuilder("dist1", flavor, address_space=space)
    with builder.region("R1", "Motion estimation", vectorizable=True):
        if flavor is ISAFlavor.VECTOR:
            builder.setvs(row_stride // 8)
            builder.setvl(8)
            builder.iop(Opcode.ADD, comment="R3=R1+8")
            builder.iop(Opcode.ADD, comment="R4=R2+8")
            acc1 = builder.acc_clear("A1=0")
            acc2 = builder.acc_clear("A2=0")
            v1 = builder.vload(builder.addr(current), vl=8, stride_bytes=row_stride,
                               comment="V1=[R1]")
            v2 = builder.vload(builder.addr(reference), vl=8, stride_bytes=row_stride,
                               comment="V2=[R2]")
            v3 = builder.vload(builder.addr(current, offset=8), vl=8,
                               stride_bytes=row_stride, comment="V3=[R3]")
            v4 = builder.vload(builder.addr(reference, offset=8), vl=8,
                               stride_bytes=row_stride, comment="V4=[R4]")
            builder.vsad(acc1, v1, v2, vl=8, comment="A1=SAD(V1,V2)")
            builder.vsad(acc2, v3, v4, vl=8, comment="A2=SAD(V3,V4)")
            r5 = builder.vsum(acc1, comment="R5=SUM(A1)")
            r6 = builder.vsum(acc2, comment="R6=SUM(A2)")
            total = builder.iop(Opcode.ADD, srcs=(r5, r6), comment="R5=R5+R6")
            builder.store(builder.addr(result), total, comment="[R7]=R5")
        elif flavor is ISAFlavor.USIMD:
            total = builder.iop(Opcode.MOV, comment="sad=0")
            with builder.loop(16, name="row") as row:
                left_cur = builder.mload(builder.addr(current, (row, row_stride)),
                                         comment="mload cur[0:8]")
                left_ref = builder.mload(builder.addr(reference, (row, row_stride)),
                                         comment="mload ref[0:8]")
                right_cur = builder.mload(builder.addr(current, (row, row_stride), offset=8),
                                          comment="mload cur[8:16]")
                right_ref = builder.mload(builder.addr(reference, (row, row_stride), offset=8),
                                          comment="mload ref[8:16]")
                left = builder.psad(left_cur, left_ref, comment="psadbw left")
                right = builder.psad(right_cur, right_ref, comment="psadbw right")
                builder.iop(Opcode.ADD, srcs=(total, left), comment="sad += left")
                total = builder.iop(Opcode.ADD, srcs=(total, right), comment="sad += right")
                builder.iop(Opcode.ADD, comment="advance cur pointer")
                builder.iop(Opcode.ADD, comment="advance ref pointer")
            builder.store(builder.addr(result), total, comment="store sad")
        else:
            total = builder.iop(Opcode.MOV, comment="sad=0")
            with builder.loop(16, name="row") as row:
                with builder.loop(16, name="col") as col:
                    cur = builder.load8(builder.addr(current, (row, row_stride), (col, 1)),
                                        comment="load cur pixel")
                    ref = builder.load8(builder.addr(reference, (row, row_stride), (col, 1)),
                                        comment="load ref pixel")
                    diff = builder.iop(Opcode.SUB, srcs=(cur, ref), comment="diff")
                    builder.iop(Opcode.CMP, srcs=(diff,), comment="abs test")
                    absolute = builder.iop(Opcode.SUB, srcs=(diff,), comment="abs")
                    total = builder.iop(Opcode.ADD, srcs=(total, absolute), comment="sad +=")
            builder.store(builder.addr(result), total, comment="store sad")
    return builder.program()
