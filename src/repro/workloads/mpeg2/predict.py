"""Form component prediction and add-block (MPEG-2 decoder R1 / R3).

*Form component prediction* builds the motion-compensated prediction of a
macroblock by copying (or, for half-pel vectors, averaging) pixels from the
reference frame at the decoded motion vector.  *Add block* adds the IDCT
residual to that prediction with unsigned saturation.  Both are classic
byte-wise streaming kernels; all three flavours here are bit-identical,
which the tests verify.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.isa import packed

__all__ = [
    "form_prediction_reference",
    "form_prediction_usimd",
    "form_prediction_vector",
    "add_block_reference",
    "add_block_usimd",
    "add_block_vector",
]


def form_prediction_reference(reference: np.ndarray, top: int, left: int,
                              block: Tuple[int, int] = (16, 16),
                              half_pel_x: bool = False,
                              half_pel_y: bool = False) -> np.ndarray:
    """Reference motion-compensated prediction with optional half-pel averaging."""
    bh, bw = block
    region = reference[top:top + bh + 1, left:left + bw + 1].astype(np.int32)
    base = region[:bh, :bw]
    if half_pel_x and half_pel_y:
        predicted = (region[:bh, :bw] + region[:bh, 1:bw + 1]
                     + region[1:bh + 1, :bw] + region[1:bh + 1, 1:bw + 1] + 2) >> 2
    elif half_pel_x:
        predicted = (region[:bh, :bw] + region[:bh, 1:bw + 1] + 1) >> 1
    elif half_pel_y:
        predicted = (region[:bh, :bw] + region[1:bh + 1, :bw] + 1) >> 1
    else:
        predicted = base
    return predicted.astype(np.uint8)


def form_prediction_usimd(reference: np.ndarray, top: int, left: int,
                          block: Tuple[int, int] = (16, 16),
                          half_pel_x: bool = False,
                          half_pel_y: bool = False) -> np.ndarray:
    """µSIMD prediction using ``pavgb`` for the half-pel cases.

    Note the full half-pel (x and y) case uses two rounded averages, which
    matches the reference only when the reference uses the same two-stage
    rounding — so that case intentionally uses the same formulation here and
    in :func:`form_prediction_vector` (single-stage ``+2 >> 2`` rounding is
    what the MPEG-2 standard specifies, so full half-pel falls back to it).
    """
    bh, bw = block
    if bw % packed.LANES_8:
        raise ValueError("block width must be a multiple of 8")
    if half_pel_x and half_pel_y:
        # the exact (+2 >> 2) rounding cannot be composed from two pavgb
        # without bias; real MMX code uses a correction term, so we keep the
        # reference arithmetic here (the timing model is unaffected).
        return form_prediction_reference(reference, top, left, block, True, True)
    out = np.empty((bh, bw), dtype=np.uint8)
    for row in range(bh):
        base_row = reference[top + row, left:left + bw].astype(np.uint8)
        words = packed.to_packed(base_row, packed.LANES_8)
        if half_pel_x:
            shifted = reference[top + row, left + 1:left + bw + 1].astype(np.uint8)
            words = packed.pavgb(words, packed.to_packed(shifted, packed.LANES_8))
        if half_pel_y:
            below = reference[top + row + 1, left:left + bw].astype(np.uint8)
            words = packed.pavgb(words, packed.to_packed(below, packed.LANES_8))
        out[row] = packed.from_packed(words)
    return out


def form_prediction_vector(reference: np.ndarray, top: int, left: int,
                           block: Tuple[int, int] = (16, 16),
                           half_pel_x: bool = False,
                           half_pel_y: bool = False,
                           max_vl: int = 16) -> np.ndarray:
    """Vector-µSIMD prediction: whole columns of packed words per operation."""
    bh, bw = block
    if bw % packed.LANES_8:
        raise ValueError("block width must be a multiple of 8")
    if half_pel_x and half_pel_y:
        return form_prediction_reference(reference, top, left, block, True, True)
    out = np.empty((bh, bw), dtype=np.uint8)
    for start in range(0, bh, max_vl):
        stop = min(start + max_vl, bh)
        rows = slice(top + start, top + stop)
        base = reference[rows, left:left + bw].astype(np.uint8)
        base_words = base.reshape(stop - start, bw // 8, 8)
        result = base_words
        if half_pel_x:
            shifted = reference[rows, left + 1:left + bw + 1].astype(np.uint8)
            result = packed.pavgb(result, shifted.reshape(result.shape))
        if half_pel_y:
            below = reference[top + start + 1:top + stop + 1, left:left + bw].astype(np.uint8)
            result = packed.pavgb(result, below.reshape(result.shape))
        out[start:stop] = result.reshape(stop - start, bw)
    return out


def add_block_reference(prediction: np.ndarray, residual: np.ndarray) -> np.ndarray:
    """Reference add-block: prediction + IDCT residual, clamped to [0, 255]."""
    prediction = np.asarray(prediction, dtype=np.int32)
    residual = np.asarray(residual, dtype=np.int32)
    if prediction.shape != residual.shape:
        raise ValueError("prediction and residual must have the same shape")
    return np.clip(prediction + residual, 0, 255).astype(np.uint8)


def add_block_usimd(prediction: np.ndarray, residual: np.ndarray) -> np.ndarray:
    """µSIMD add-block: unpack to 16 bits, add, pack with unsigned saturation."""
    prediction = np.asarray(prediction, dtype=np.uint8)
    residual = np.asarray(residual, dtype=np.int16)
    if prediction.shape != residual.shape:
        raise ValueError("prediction and residual must have the same shape")
    rows, cols = prediction.shape
    if cols % packed.LANES_8:
        raise ValueError("block width must be a multiple of 8")
    out = np.empty_like(prediction)
    for row in range(rows):
        pred_words = packed.to_packed(prediction[row], packed.LANES_8)
        res_row = residual[row]
        lo_res = packed.to_packed(res_row, packed.LANES_16)[0::2]
        hi_res = packed.to_packed(res_row, packed.LANES_16)[1::2]
        lo_pred, hi_pred = packed.unpack_u8_to_s16(pred_words)
        lo = packed.paddw(lo_pred, lo_res)
        hi = packed.paddw(hi_pred, hi_res)
        out[row] = packed.from_packed(packed.packuswb(lo, hi))
    return out


def add_block_vector(prediction: np.ndarray, residual: np.ndarray,
                     max_vl: int = 16) -> np.ndarray:
    """Vector-µSIMD add-block: identical arithmetic over vector registers."""
    prediction = np.asarray(prediction, dtype=np.uint8)
    residual = np.asarray(residual, dtype=np.int16)
    rows, cols = prediction.shape
    if cols % packed.LANES_8:
        raise ValueError("block width must be a multiple of 8")
    out = np.empty_like(prediction)
    for start in range(0, rows, max_vl):
        stop = min(start + max_vl, rows)
        pred = prediction[start:stop].reshape(stop - start, cols // 8, 8)
        res = residual[start:stop].astype(np.int64)
        wide = pred.astype(np.int64).reshape(stop - start, cols) + res
        out[start:stop] = np.clip(wide, 0, 255).astype(np.uint8)
    return out
