"""MPEG-2 encoder / decoder workloads.

Vector regions (Table 1 of the paper):

* **encoder** — motion estimation (SAD full search), forward DCT and
  inverse DCT (52.3 % of the 2-issue µSIMD execution time);
* **decoder** — form component prediction (motion-compensated prediction),
  inverse DCT and add-block (23.1 %).

The scalar regions are the variable-length (de)coding, quantisation control
and bit-stream handling.  Motion estimation is the paper's running example
(Figure 4): its vector version needs only 16 operations per 8×16 block where
the µSIMD version needs 172, but its vector loads have a stride equal to the
image width, which is why the realistic-memory results of Figure 5(b) punish
this benchmark.
"""

from repro.workloads.mpeg2 import motion, predict, programs

__all__ = ["motion", "predict", "programs"]
