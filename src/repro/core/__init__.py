"""Core of the reproduction: the Vector-µSIMD-VLIW architecture glue.

This package ties the substrates together into the object a user of the
library manipulates:

* :class:`repro.core.architecture.VectorMicroSimdVliwMachine` — one machine
  configuration with its latency model and memory hierarchy; it compiles
  (statically schedules) kernel programs and executes them;
* :mod:`repro.core.runner` — runs a benchmark (one program per ISA flavour)
  across a set of machine configurations, picking the right flavour for
  each family, with optional perfect-memory mode;
* :mod:`repro.core.metrics` — speed-ups, averages and the per-region
  aggregations the paper's tables and figures are built from.
"""

from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.core.runner import (
    BenchmarkSpec,
    BenchmarkResult,
    run_benchmark,
    run_benchmarks,
    execute_requests,
    default_jobs,
    flavor_for_config,
)
from repro.core.metrics import (
    arithmetic_mean,
    geometric_mean,
    speedup,
    format_table,
)

__all__ = [
    "VectorMicroSimdVliwMachine",
    "BenchmarkSpec",
    "BenchmarkResult",
    "run_benchmark",
    "run_benchmarks",
    "execute_requests",
    "default_jobs",
    "flavor_for_config",
    "arithmetic_mean",
    "geometric_mean",
    "speedup",
    "format_table",
]
