"""The user-facing machine object.

:class:`VectorMicroSimdVliwMachine` bundles one machine configuration
(Table 2), a latency model (Figure 3 descriptors) and a memory hierarchy
(§4.2) behind a small API:

* :meth:`compile` — statically schedule a kernel program;
* :meth:`run` — compile and execute a program, returning per-region
  statistics;
* :meth:`schedule_listing` — the human-readable schedule of one segment
  (used to reproduce the Figure-4 listing);
* :meth:`check_registers` — verify the program fits the register files.

The class is deliberately stateless between :meth:`run` calls unless the
caller opts into a shared memory hierarchy (e.g. to model several kernels of
one application warming the caches for each other).
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.cache import compile_cached
from repro.compiler.ir import ISAFlavor, KernelProgram, Segment
from repro.compiler.regalloc import RegisterPressureReport, check_register_pressure
from repro.compiler.scheduler import CompiledProgram, Schedule, schedule_segment
from repro.machine.config import MachineConfig, get_config
from repro.machine.latency import LatencyModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.engines import make_engine
from repro.sim.stats import RunStats

__all__ = ["VectorMicroSimdVliwMachine"]


class VectorMicroSimdVliwMachine:
    """A (Vector-µSIMD-)VLIW machine instance ready to compile and run kernels."""

    def __init__(self, config: MachineConfig,
                 latency_model: Optional[LatencyModel] = None,
                 perfect_memory: bool = False) -> None:
        self.config = config
        self.latency_model = latency_model or LatencyModel()
        self.perfect_memory = perfect_memory

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_name(cls, name: str, perfect_memory: bool = False,
                  latency_model: Optional[LatencyModel] = None) -> "VectorMicroSimdVliwMachine":
        """Build a machine from a Table-2 configuration name (e.g. ``"vector2-4w"``)."""
        return cls(get_config(name), latency_model=latency_model,
                   perfect_memory=perfect_memory)

    # ----------------------------------------------------------------- checks

    def supports(self, flavor: ISAFlavor) -> bool:
        """True if programs of ``flavor`` can run on this machine."""
        if flavor is ISAFlavor.VECTOR:
            return self.config.has_vector
        if flavor is ISAFlavor.USIMD:
            return self.config.has_usimd
        return True

    def check_registers(self, program: KernelProgram) -> RegisterPressureReport:
        """Verify the program's register pressure against the register files."""
        return check_register_pressure(program, self.config)

    # ------------------------------------------------------------ compilation

    def compile(self, program: KernelProgram,
                strategy: str = "baseline") -> CompiledProgram:
        """Statically schedule ``program`` for this machine.

        Compilation goes through the process-wide content-addressed compile
        cache, so the ten Table-2 configurations and the perfect/realistic
        memory modes share one scheduling pass per distinct program.
        ``strategy`` picks a registered scheduler strategy
        (:mod:`repro.compiler.strategies`); the default is the baseline
        list scheduler.
        """
        if not self.supports(program.flavor):
            raise ValueError(
                f"{self.config.name} cannot execute {program.flavor.value} programs")
        return compile_cached(program, self.config, self.latency_model,
                              strategy=strategy)

    def schedule_segment(self, segment: Segment) -> Schedule:
        """Schedule a single segment (useful for kernels and examples)."""
        return schedule_segment(segment, self.config, self.latency_model)

    def schedule_listing(self, segment: Segment) -> str:
        """Human-readable schedule of ``segment`` (the Figure-4 style listing)."""
        return self.schedule_segment(segment).format_table()

    # -------------------------------------------------------------- execution

    def new_hierarchy(self) -> MemoryHierarchy:
        """A fresh (cold) memory hierarchy matching this machine."""
        return MemoryHierarchy(self.config.memory,
                               l1_ports=self.config.l1_ports,
                               l2_port_words=self.config.l2_port_words,
                               perfect=self.perfect_memory)

    def warmed_hierarchy(self, program: KernelProgram) -> MemoryHierarchy:
        """A hierarchy with the program's working set pre-loaded into L2/L3.

        A real application's kernels consume data that the previous pipeline
        stage (file input, an earlier kernel) just produced, so the outer
        cache levels start warm; the paper reports high hit ratios for every
        benchmark for exactly this reason.  Programs built without an
        address space simply get a cold hierarchy.
        """
        hierarchy = self.new_hierarchy()
        space = getattr(program, "address_space", None)
        if space is not None and not self.perfect_memory:
            hierarchy.preload_spans(
                [(spec.base, spec.size_bytes) for spec in space])
        return hierarchy

    def run(self, program: KernelProgram,
            hierarchy: Optional[MemoryHierarchy] = None,
            warm: bool = True, engine: Optional[str] = None,
            strategy: str = "baseline") -> RunStats:
        """Compile and execute ``program``; returns per-region statistics.

        By default the memory hierarchy starts with the program's working
        set resident in the L2/L3 (see :meth:`warmed_hierarchy`); pass
        ``warm=False`` to measure a completely cold start instead.

        ``engine`` selects the execution tier — ``"trace"`` (default) or
        ``"interpreter"`` — which is purely a wall-clock knob: the two
        tiers produce identical statistics.  ``strategy`` picks the
        scheduler strategy to compile under; a transforming strategy runs
        its rewritten program (same address space, so warming is unchanged).
        """
        compiled = self.compile(program, strategy=strategy)
        if hierarchy is None:
            hierarchy = self.warmed_hierarchy(program) if warm else self.new_hierarchy()
        return make_engine(engine, compiled, hierarchy).run()

    def run_compiled(self, compiled: CompiledProgram,
                     hierarchy: Optional[MemoryHierarchy] = None,
                     engine: Optional[str] = None) -> RunStats:
        """Execute an already compiled program (reuses schedules)."""
        return make_engine(engine, compiled, hierarchy or self.new_hierarchy()).run()

    # ---------------------------------------------------------------- cosmetics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "perfect-memory" if self.perfect_memory else "realistic-memory"
        return f"VectorMicroSimdVliwMachine({self.config.name}, {mode})"
