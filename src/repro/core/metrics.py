"""Metric helpers shared by the experiment modules.

Small, dependency-free helpers: speed-ups, means and a fixed-width table
formatter used to print the paper's tables and figure data as text.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["speedup", "arithmetic_mean", "geometric_mean", "format_table",
           "format_float", "normalize"]


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Classic speed-up: baseline time divided by measured time."""
    if cycles <= 0:
        return 0.0
    return baseline_cycles / cycles


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper reports arithmetic averages of speed-ups)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, provided for completeness and the ablation reports."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(values: Mapping[str, float], reference_key: str) -> Dict[str, float]:
    """Normalise a mapping of values by the entry at ``reference_key``."""
    reference = values[reference_key]
    if reference == 0:
        raise ZeroDivisionError(f"reference entry {reference_key!r} is zero")
    return {key: value / reference for key, value in values.items()}


def format_float(value: float, digits: int = 2) -> str:
    """Render a float the way the paper's tables do (fixed decimals)."""
    return f"{value:.{digits}f}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with right-aligned numeric columns.

    The experiment modules print their reproduced tables/figures through
    this helper so the report output and the benchmark logs look
    consistent.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format_float(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) if index else cell.ljust(widths[index])
                         for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
