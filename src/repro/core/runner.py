"""Running a benchmark across machine configurations.

A *benchmark* here is the unit of the paper's evaluation: one application
(e.g. the JPEG encoder) expressed as three programs — a scalar version, a
µSIMD version and a Vector-µSIMD version, all sharing the same scalar (R0)
region code.  Each machine family executes its own flavour:

============  =================
family        program flavour
============  =================
VLIW          scalar
+µSIMD        µSIMD
+Vector1/2    Vector-µSIMD
============  =================

:func:`run_benchmark` compiles and runs the right flavour on every requested
configuration (optionally with perfect memory) and returns the per-config
:class:`~repro.sim.stats.RunStats` keyed by configuration name, which is the
raw material of every figure and table in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.machine.config import MachineConfig, PAPER_CONFIG_ORDER, get_config
from repro.machine.latency import LatencyModel
from repro.sim.stats import RunStats

__all__ = ["BenchmarkSpec", "BenchmarkResult", "flavor_for_config", "run_benchmark"]


def flavor_for_config(config: MachineConfig) -> ISAFlavor:
    """Which program flavour a configuration family executes."""
    if config.has_vector:
        return ISAFlavor.VECTOR
    if config.has_usimd:
        return ISAFlavor.USIMD
    return ISAFlavor.SCALAR


@dataclass
class BenchmarkSpec:
    """One benchmark: a name plus its three program flavours."""

    name: str
    programs: Dict[ISAFlavor, KernelProgram]
    description: str = ""

    def __post_init__(self) -> None:
        if ISAFlavor.SCALAR not in self.programs:
            raise ValueError(f"benchmark {self.name!r} needs at least a scalar program")

    def program_for(self, config: MachineConfig) -> KernelProgram:
        """The program flavour ``config`` executes (µSIMD/vector fall back to scalar)."""
        flavor = flavor_for_config(config)
        if flavor in self.programs:
            return self.programs[flavor]
        return self.programs[ISAFlavor.SCALAR]

    def flavors(self) -> Sequence[ISAFlavor]:
        return tuple(self.programs.keys())


@dataclass
class BenchmarkResult:
    """Results of one benchmark over a set of configurations."""

    benchmark: str
    perfect_memory: bool
    runs: Dict[str, RunStats] = field(default_factory=dict)

    def __getitem__(self, config_name: str) -> RunStats:
        return self.runs[config_name]

    def __contains__(self, config_name: str) -> bool:
        return config_name in self.runs

    def config_names(self) -> Sequence[str]:
        return tuple(self.runs.keys())

    def speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Whole-application speed-up of one configuration over another."""
        return self.runs[config_name].speedup_over(self.runs[baseline_name])

    def vector_region_speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Vector-region speed-up of one configuration over another."""
        return self.runs[config_name].vector_region_speedup_over(self.runs[baseline_name])

    def scalar_region_speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Scalar-region speed-up of one configuration over another."""
        return self.runs[config_name].scalar_region_speedup_over(self.runs[baseline_name])


def run_benchmark(spec: BenchmarkSpec,
                  config_names: Optional[Iterable[str]] = None,
                  perfect_memory: bool = False,
                  latency_model: Optional[LatencyModel] = None) -> BenchmarkResult:
    """Run ``spec`` on every configuration in ``config_names``.

    ``config_names`` defaults to the full Table-2 set in the paper's
    presentation order.  Every configuration gets a cold memory hierarchy —
    the programs themselves model the reuse between their regions.
    """
    names = list(config_names) if config_names is not None else list(PAPER_CONFIG_ORDER)
    result = BenchmarkResult(benchmark=spec.name, perfect_memory=perfect_memory)
    for name in names:
        config = get_config(name)
        machine = VectorMicroSimdVliwMachine(config, latency_model=latency_model,
                                             perfect_memory=perfect_memory)
        program = spec.program_for(config)
        result.runs[name] = machine.run(program)
    return result
