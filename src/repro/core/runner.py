"""Running a benchmark across machine configurations.

A *benchmark* here is the unit of the paper's evaluation: one application
(e.g. the JPEG encoder) expressed as three programs — a scalar version, a
µSIMD version and a Vector-µSIMD version, all sharing the same scalar (R0)
region code.  Each machine family executes its own flavour:

============  =================
family        program flavour
============  =================
VLIW          scalar
+µSIMD        µSIMD
+Vector1/2    Vector-µSIMD
============  =================

:func:`run_benchmark` compiles and runs the right flavour on every requested
configuration (optionally with perfect memory) and returns the per-config
:class:`~repro.sim.stats.RunStats` keyed by configuration name, which is the
raw material of every figure and table in :mod:`repro.experiments`.

:func:`run_benchmarks` is the batched, parallel entry point: it expands a
set of benchmarks into an :class:`~repro.sim.plan.ExperimentPlan`, executes
the independent (benchmark × configuration × memory-mode) runs either
serially or across a ``multiprocessing`` pool (``jobs=N``), and merges the
per-worker shards deterministically — a parallel sweep is byte-identical to
a serial one.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import random
import sys
import time
from concurrent.futures import as_completed
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports IR)
    from repro.store import ResultStore

from repro import faults
from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.machine.config import (
    MachineConfig,
    PAPER_CONFIG_ORDER,
    get_config,
    register_config,
)
from repro.machine.latency import LatencyModel
from repro.sim.plan import ExperimentPlan, RunRequest, execute_plan
from repro.sim.stats import RunStats, merge_run_maps

__all__ = [
    "BenchmarkSpec",
    "BenchmarkResult",
    "QuarantinedRun",
    "flavor_for_config",
    "run_benchmark",
    "run_benchmarks",
    "execute_requests",
    "request_fingerprints",
    "default_jobs",
    "last_dispatch",
    "last_quarantine",
    "PARALLEL_MIN_PENDING",
    "DEFAULT_MAX_ATTEMPTS",
]

logger = logging.getLogger("repro.runner")


def flavor_for_config(config: MachineConfig) -> ISAFlavor:
    """Which program flavour a configuration family executes."""
    if config.has_vector:
        return ISAFlavor.VECTOR
    if config.has_usimd:
        return ISAFlavor.USIMD
    return ISAFlavor.SCALAR


@dataclass
class BenchmarkSpec:
    """One benchmark: a name plus its three program flavours."""

    name: str
    programs: Dict[ISAFlavor, KernelProgram]
    description: str = ""

    def __post_init__(self) -> None:
        if ISAFlavor.SCALAR not in self.programs:
            raise ValueError(f"benchmark {self.name!r} needs at least a scalar program")

    def program_for(self, config: MachineConfig) -> KernelProgram:
        """The program flavour ``config`` executes (µSIMD/vector fall back to scalar)."""
        flavor = flavor_for_config(config)
        if flavor in self.programs:
            return self.programs[flavor]
        return self.programs[ISAFlavor.SCALAR]

    def flavors(self) -> Sequence[ISAFlavor]:
        return tuple(self.programs.keys())


@dataclass
class BenchmarkResult:
    """Results of one benchmark over a set of configurations."""

    benchmark: str
    perfect_memory: bool
    runs: Dict[str, RunStats] = field(default_factory=dict)

    def __getitem__(self, config_name: str) -> RunStats:
        return self.runs[config_name]

    def __contains__(self, config_name: str) -> bool:
        return config_name in self.runs

    def config_names(self) -> Sequence[str]:
        return tuple(self.runs.keys())

    def speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Whole-application speed-up of one configuration over another."""
        return self.runs[config_name].speedup_over(self.runs[baseline_name])

    def vector_region_speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Vector-region speed-up of one configuration over another."""
        return self.runs[config_name].vector_region_speedup_over(self.runs[baseline_name])

    def scalar_region_speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Scalar-region speed-up of one configuration over another."""
        return self.runs[config_name].scalar_region_speedup_over(self.runs[baseline_name])


def run_benchmark(spec: BenchmarkSpec,
                  config_names: Optional[Iterable[str]] = None,
                  perfect_memory: bool = False,
                  latency_model: Optional[LatencyModel] = None,
                  engine: Optional[str] = None,
                  strategy: str = "baseline") -> BenchmarkResult:
    """Run ``spec`` on every configuration in ``config_names``.

    ``config_names`` defaults to the full Table-2 set in the paper's
    presentation order.  Every configuration gets a cold memory hierarchy —
    the programs themselves model the reuse between their regions.
    ``engine`` selects the execution tier (trace-compiled by default);
    ``strategy`` the scheduler strategy to compile under.
    """
    names = list(config_names) if config_names is not None else list(PAPER_CONFIG_ORDER)
    result = BenchmarkResult(benchmark=spec.name, perfect_memory=perfect_memory)
    for name in names:
        config = get_config(name)
        machine = VectorMicroSimdVliwMachine(config, latency_model=latency_model,
                                             perfect_memory=perfect_memory)
        program = spec.program_for(config)
        result.runs[name] = machine.run(program, engine=engine,
                                        strategy=strategy)
    return result


# ---------------------------------------------------------------------------
# Batched / parallel execution
# ---------------------------------------------------------------------------

def default_jobs() -> int:
    """Worker count used when callers ask for "parallel" without a number.

    ``REPRO_JOBS`` overrides; otherwise the CPU count (at least 1).
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {env!r}") from exc
    return max(1, os.cpu_count() or 1)


#: Minimum number of pending runs before a worker pool pays for itself.
#: Below this, pool start-up plus each worker re-warming its own compile
#: cache dominate the actual simulation work: the 60-run realistic sweep
#: measured 2.1s with ``jobs=4`` against 1.7s serial.  Batches smaller than
#: this fall back to the serial fast path (see :func:`last_dispatch`).
PARALLEL_MIN_PENDING = 64

#: Bounded attempts per request before it is quarantined: the first
#: (chunked) try plus two isolated retries.
DEFAULT_MAX_ATTEMPTS = 3

#: Base of the exponential backoff between retries of one request.
RETRY_BASE_DELAY = 0.05
#: Ceiling on any single backoff sleep.
RETRY_MAX_DELAY = 2.0


@dataclass(frozen=True)
class QuarantinedRun:
    """One request given up on after bounded retries, with its history."""

    request: RunRequest
    attempts: int
    reason: str


#: How the most recent :func:`execute_requests` batch was dispatched.
_last_dispatch: Dict[str, object] = {
    "mode": "serial", "reason": "no batch executed yet",
    "jobs": 0, "pending": 0, "quarantined": 0, "pool_recovered": False,
}

#: Requests the most recent batch quarantined (empty on a clean batch).
_last_quarantine: List[QuarantinedRun] = []


def last_dispatch() -> Dict[str, object]:
    """Dispatch decision of the most recent :func:`execute_requests` call.

    Returns a dict with ``mode`` (``"serial"`` or ``"parallel"``),
    ``reason`` (why that mode was chosen — e.g. the batch was too small to
    amortise worker spawn), ``jobs`` (what the caller requested),
    ``pending`` (runs actually simulated after store hits),
    ``quarantined`` (requests abandoned after bounded retries — see
    :func:`last_quarantine` for details) and ``pool_recovered`` (whether a
    worker pool died mid-batch and the batch finished through the
    isolation path anyway).
    """
    return dict(_last_dispatch)


def last_quarantine() -> List[QuarantinedRun]:
    """Requests the most recent batch abandoned, with attempts and reasons."""
    return list(_last_quarantine)


def _record_dispatch(mode: str, reason: str, jobs: int, pending: int,
                     quarantined: Sequence[QuarantinedRun] = (),
                     pool_recovered: bool = False) -> None:
    _last_dispatch.update(mode=mode, reason=reason, jobs=jobs,
                          pending=pending, quarantined=len(quarantined),
                          pool_recovered=pool_recovered)
    _last_quarantine[:] = quarantined


def _backoff_delay(attempt: int, base: float = RETRY_BASE_DELAY,
                   cap: float = RETRY_MAX_DELAY) -> float:
    """Exponential backoff with jitter: ``base * 2^attempt``, ±50%.

    The jitter decorrelates retries of several requests (or several
    cooperating processes) hitting one sick filesystem — the classic
    thundering-herd fix.  Simulation results are unaffected by timing, so
    drawing from the global ``random`` module is safe here.
    """
    delay = min(cap, base * (2 ** attempt))
    return delay * (0.5 + random.random())


#: Per-worker state: the benchmark specs and latency model of the current
#: pool.  Workers re-use the process-wide compile cache across tasks, so a
#: worker that simulates several configurations of one benchmark schedules
#: each distinct (program, configuration) pair once.
_WORKER_STATE: Optional[tuple] = None


def _worker_init(specs: Mapping[str, BenchmarkSpec],
                 latency_model: Optional[LatencyModel],
                 engine: Optional[str],
                 extra_configs: Mapping[str, MachineConfig] = (),
                 extra_workloads: Mapping[str, object] = (),
                 fault_plan: Optional["faults.FaultPlan"] = None) -> None:
    global _WORKER_STATE
    # non-paper configurations (design-space points) and non-shipped
    # workloads (user registrations) are re-registered per worker so
    # ``get_config`` / ``get_workload`` resolve them under spawn as well as
    # fork — the registries themselves never cross a process boundary
    for config in dict(extra_configs).values():
        register_config(config, overwrite=True)
    if extra_workloads:
        from repro.workloads.registry import register_workload_definition
        for definition in dict(extra_workloads).values():
            register_workload_definition(definition, overwrite=True)
    # the fault harness rides to workers explicitly (spawn-safe); counters
    # restart per process, which is the per-worker semantics the plans want
    if fault_plan is not None:
        faults.install_plan(fault_plan)
    _WORKER_STATE = (specs, latency_model, engine)


def _worker_run(request: RunRequest) -> RunStats:
    specs, latency_model, engine = _WORKER_STATE
    shard = execute_plan(ExperimentPlan([request]), specs,
                         latency_model=latency_model, engine=engine)
    return shard[request]


def _worker_run_chunk(requests: Tuple[RunRequest, ...]) -> List[RunStats]:
    """Run one chunk of requests in a worker, in order.

    Requests run one at a time (the process-wide compile cache still
    collapses repeated schedules), with the fault hook consulted after
    each — so an injected worker crash lands *mid-chunk*, the hardest
    case for the parent's recovery path.
    """
    specs, latency_model, engine = _WORKER_STATE
    results: List[RunStats] = []
    for request in requests:
        shard = execute_plan(ExperimentPlan([request]), specs,
                             latency_model=latency_model, engine=engine)
        results.append(shard[request])
        faults.note_worker_run(request.benchmark)
    return results


def _as_spec_map(specs: Union[Mapping[str, BenchmarkSpec], Iterable[BenchmarkSpec]]
                 ) -> Dict[str, BenchmarkSpec]:
    if isinstance(specs, Mapping):
        return dict(specs)
    if isinstance(specs, BenchmarkSpec):
        specs = [specs]
    return {spec.name: spec for spec in specs}


def request_fingerprints(plan: ExperimentPlan,
                         spec_map: Mapping[str, BenchmarkSpec],
                         latency_model: Optional[LatencyModel] = None
                         ) -> Dict[RunRequest, str]:
    """Content fingerprint of every request of ``plan`` (see repro.store).

    A plan spans few distinct programs and configurations, so the component
    hashes — especially the program IR walk — are memoised across the
    requests (safe by identity: ``spec_map`` keeps every program alive for
    the duration of this call).
    """
    from repro.compiler.cache import (
        fingerprint_config,
        fingerprint_latency_model,
        fingerprint_program,
    )
    from repro.store import run_fingerprint

    latency_fp = fingerprint_latency_model(
        latency_model if latency_model is not None else LatencyModel())
    program_fps: Dict[int, str] = {}
    config_fps: Dict[str, str] = {}
    fingerprints: Dict[RunRequest, str] = {}
    for request in plan:
        config = get_config(request.config_name)
        program = spec_map[request.benchmark].program_for(config)
        program_fp = program_fps.get(id(program))
        if program_fp is None:
            program_fp = program_fps.setdefault(id(program),
                                                fingerprint_program(program))
        config_fp = config_fps.get(request.config_name)
        if config_fp is None:
            config_fp = config_fps.setdefault(request.config_name,
                                              fingerprint_config(config))
        fingerprints[request] = run_fingerprint(
            program, config, latency_model=latency_model,
            perfect_memory=request.perfect_memory,
            program_fingerprint=program_fp,
            config_fingerprint=config_fp,
            latency_fingerprint=latency_fp,
            benchmark=request.benchmark,
            strategy=request.strategy)
    return fingerprints


#: Backwards-compatible private alias (pre-lease-coordination name).
_request_fingerprints = request_fingerprints


def _run_parallel(pending: ExperimentPlan,
                  spec_map: Mapping[str, BenchmarkSpec],
                  jobs: int,
                  latency_model: Optional[LatencyModel],
                  engine: Optional[str],
                  extra_configs: Mapping[str, MachineConfig],
                  extra_workloads: Mapping[str, object],
                  max_attempts: int,
                  retry_base_delay: float
                  ) -> Tuple[Dict[RunRequest, RunStats],
                             List[QuarantinedRun], bool]:
    """Execute ``pending`` over a worker pool, surviving worker death.

    Two passes:

    1. **Chunked** — the fast path: one executor, requests grouped into
       chunks to amortise IPC, exactly the throughput of the old
       ``Pool.map`` dispatch.  A ``multiprocessing.Pool`` hangs forever
       when a worker is SIGKILLed mid-task; ``ProcessPoolExecutor``
       instead fails every outstanding future with ``BrokenProcessPool``,
       which is the detection this recovery is built on.
    2. **Isolation** — only reached after a failure: each unfinished
       request runs alone in a fresh single-worker executor, with
       exponential backoff + jitter between its attempts.  A pool break
       cannot identify the poison request (every queued future breaks
       with it), so isolation is also the *attribution* mechanism: a
       request that keeps killing its own private worker is provably
       poison and is quarantined after ``max_attempts`` total attempts,
       while innocent bystanders complete and are never charged.

    Returns ``(results, quarantined, pool_recovered)``.  Results are
    deterministic regardless of which pass produced them — the simulation
    itself is deterministic, so a retried run is byte-identical to an
    undisturbed one.
    """
    context = multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn")
    initargs = (spec_map, latency_model, engine, dict(extra_configs),
                dict(extra_workloads), faults.active_plan())
    requests = list(pending.requests)
    workers = min(jobs, len(requests))
    chunksize = max(1, len(requests) // (workers * 4))
    results: Dict[RunRequest, RunStats] = {}
    failures: Dict[RunRequest, List[str]] = {}
    pool_broke = False

    chunks = [tuple(requests[i:i + chunksize])
              for i in range(0, len(requests), chunksize)]
    with ProcessPoolExecutor(max_workers=workers, mp_context=context,
                             initializer=_worker_init,
                             initargs=initargs) as executor:
        try:
            futures = {executor.submit(_worker_run_chunk, chunk): chunk
                       for chunk in chunks}
        except BrokenProcessPool:
            # a worker died during pool start-up; isolation handles it all
            futures = {}
            pool_broke = True
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                for request, stats in zip(chunk, future.result()):
                    results[request] = stats
            except BrokenProcessPool:
                # the in-flight chunk and every queued one fail together —
                # nobody can be blamed yet, so nobody is charged an attempt
                pool_broke = True
            except Exception as exc:  # a worker *raised*: pool still alive
                for request in chunk:
                    failures.setdefault(request, []).append(
                        f"{type(exc).__name__}: {exc}")

    remaining = [r for r in requests if r not in results]
    quarantined: List[QuarantinedRun] = []
    if remaining:
        logger.warning(
            "parallel batch lost %d of %d runs (%s); recovering through "
            "per-request isolation", len(remaining), len(requests),
            "worker pool died" if pool_broke else "worker exceptions")
    for request in remaining:
        history = failures.setdefault(request, [])
        attempts = len(history)
        while attempts < max_attempts and request not in results:
            if attempts:
                time.sleep(_backoff_delay(attempts, retry_base_delay))
            attempts += 1
            try:
                with ProcessPoolExecutor(max_workers=1, mp_context=context,
                                         initializer=_worker_init,
                                         initargs=initargs) as solo:
                    stats_list = solo.submit(_worker_run_chunk,
                                             (request,)).result()
                results[request] = stats_list[0]
            except BrokenProcessPool:
                history.append("worker process died (BrokenProcessPool)")
            except Exception as exc:
                history.append(f"{type(exc).__name__}: {exc}")
        if request not in results:
            quarantined.append(QuarantinedRun(
                request=request, attempts=attempts,
                reason="; ".join(history) or "no attempt record"))
            logger.error("quarantined %r after %d attempt(s): %s",
                         request, attempts, quarantined[-1].reason)
    return results, quarantined, pool_broke


def execute_requests(requests: Iterable[RunRequest],
                     specs: Union[Mapping[str, BenchmarkSpec], Iterable[BenchmarkSpec]],
                     jobs: int = 1,
                     latency_model: Optional[LatencyModel] = None,
                     engine: Optional[str] = None,
                     store: Optional["ResultStore"] = None,
                     extra_configs: Optional[Mapping[str, MachineConfig]] = None,
                     extra_workloads: Optional[Mapping[str, object]] = None,
                     min_parallel_runs: Optional[int] = None,
                     max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                     retry_base_delay: float = RETRY_BASE_DELAY
                     ) -> Dict[RunRequest, RunStats]:
    """Execute a batch of runs, optionally across worker processes.

    Every request is independent (its own warmed memory hierarchy), so the
    batch parallelises trivially.  Results are merged with
    :func:`repro.sim.stats.merge_run_maps` in request order regardless of
    completion order, making ``jobs=N`` byte-identical to ``jobs=1``.

    ``jobs < 2`` — or a batch too small to amortise a pool — runs in
    process through the same serial fast path workers use.  "Too small"
    means fewer than ``min_parallel_runs`` pending runs (default
    :data:`PARALLEL_MIN_PENDING`): spawning workers that each re-warm their
    own compile cache costs more than it saves on small batches, so they
    fall back to serial even when ``jobs > 1`` was requested.  The decision
    and its reason are recorded — see :func:`last_dispatch`.  Pass
    ``min_parallel_runs=0`` to force the pool regardless of batch size.
    ``engine`` selects the execution tier (trace-compiled by default);
    serial, parallel, trace and interpreter all produce byte-identical
    statistics.

    ``store`` names a persistent :class:`~repro.store.ResultStore`: every
    request whose content fingerprint is already stored — by an earlier
    invocation, another worker pool, or a concurrent CI job — is served
    from disk instead of simulated, and freshly simulated results are
    written back.  The deterministic merge is unchanged, so a warm store is
    byte-identical to a cold one.  ``extra_configs`` publishes non-paper
    configurations (design-space points) to this process and every worker
    (workers resolve ``get_config(request.config_name)``, so this one is
    load-bearing).  ``extra_workloads`` mirrors it for user-registered
    workload definitions, defaulting to every user registration of the
    calling process: execution itself runs from the pickled ``specs`` and
    never needs the registry, but this keeps each worker's registry state
    consistent with the parent's — under spawn, workers otherwise hold
    only the shipped entries — so registry lookups from user builder code
    or future worker-side spec construction resolve identically.

    **Crash safety.**  Parallel batches survive worker death: a SIGKILLed
    (OOM-killed, segfaulted) pool worker fails its outstanding futures
    instead of hanging the batch, and the lost requests are retried —
    first in per-request isolation with exponential backoff + jitter, up
    to ``max_attempts`` total attempts each — before a provably poison
    request is *quarantined* and the rest of the batch completes without
    it (graceful degradation, not all-or-nothing).  Quarantined requests
    are absent from the returned mapping; :func:`last_quarantine` lists
    them with attempt counts and reasons, and :func:`last_dispatch`
    reports the counts.  Store write-back failures likewise never discard
    computed results: the error is logged and the statistics are returned
    to the caller regardless.  Serial in-process execution is unchanged —
    a deterministic simulation error there still raises.
    """
    plan = requests if isinstance(requests, ExperimentPlan) else ExperimentPlan(requests)
    spec_map = _as_spec_map(specs)
    if extra_configs:
        for config in extra_configs.values():
            register_config(config, overwrite=True)
    missing = [r.benchmark for r in plan if r.benchmark not in spec_map]
    if missing:
        raise KeyError(f"no spec for benchmarks {sorted(set(missing))!r}")

    stored: Dict[RunRequest, RunStats] = {}
    fingerprints: Dict[RunRequest, str] = {}
    pending = plan
    if store is not None:
        fingerprints = request_fingerprints(plan, spec_map, latency_model)
        stored = store.get_many(fingerprints)
        pending = plan.without(stored)

    cutover = PARALLEL_MIN_PENDING if min_parallel_runs is None else min_parallel_runs
    if len(pending) == 0:
        fresh: Dict[RunRequest, RunStats] = {}
        _record_dispatch("serial", "every request served from the store",
                         jobs, 0)
    elif jobs < 2 or len(pending) < 2:
        _record_dispatch("serial", "serial execution requested",
                         jobs, len(pending))
        fresh = execute_plan(pending, spec_map, latency_model=latency_model,
                             engine=engine)
    elif len(pending) < cutover:
        _record_dispatch(
            "serial",
            f"batch of {len(pending)} pending runs is below the parallel "
            f"cutover of {cutover}; worker spawn would dominate",
            jobs, len(pending))
        fresh = execute_plan(pending, spec_map, latency_model=latency_model,
                             engine=engine)
    else:
        # Fork shares the already-built program IR with the workers for free;
        # macOS/Windows use spawn (fork is unsafe under Objective-C frameworks
        # and threaded BLAS) and pickle the specs once per worker instead.
        if extra_workloads is None:
            from repro.workloads.registry import user_workload_definitions
            extra_workloads = user_workload_definitions()
        results, quarantined, recovered = _run_parallel(
            pending, spec_map, jobs, latency_model, engine,
            dict(extra_configs or {}), dict(extra_workloads),
            max_attempts, retry_base_delay)
        fresh = {request: results[request] for request in pending.requests
                 if request in results}
        _record_dispatch(
            "parallel",
            f"{len(pending)} pending runs across "
            f"{min(jobs, len(pending))} workers",
            jobs, len(pending), quarantined=quarantined,
            pool_recovered=recovered)

    if store is not None:
        for request, stats in fresh.items():
            try:
                store.put(fingerprints[request], stats,
                          context={"benchmark": request.benchmark,
                                   "config": request.config_name,
                                   "perfect_memory": request.perfect_memory,
                                   "strategy": request.strategy})
            except OSError as exc:
                # persistence is an optimisation; the computed result is
                # not — keep it and carry on (the next sweep re-simulates
                # and re-attempts the write)
                logger.warning("store write-back failed for %r (%s); "
                               "returning the computed result anyway",
                               request, exc)
    return merge_run_maps([stored, fresh], order=plan.requests)


def run_benchmarks(specs: Union[Mapping[str, BenchmarkSpec], Iterable[BenchmarkSpec]],
                   config_names: Optional[Iterable[str]] = None,
                   perfect_memory: bool = False,
                   jobs: int = 1,
                   latency_model: Optional[LatencyModel] = None,
                   engine: Optional[str] = None,
                   strategy: str = "baseline"
                   ) -> Dict[str, BenchmarkResult]:
    """Run several benchmarks over several configurations, possibly in parallel.

    The batched, engine-backed counterpart of :func:`run_benchmark`: the
    (benchmark × configuration) cross product becomes one
    :class:`~repro.sim.plan.ExperimentPlan`, compilations are shared through
    the compile cache, and ``jobs=N`` distributes the independent runs over
    ``N`` worker processes.  Returns one :class:`BenchmarkResult` per
    benchmark, keyed and ordered by benchmark name as supplied.
    ``engine`` selects the execution tier (trace-compiled by default);
    ``strategy`` the scheduler strategy every run compiles under.
    """
    spec_map = _as_spec_map(specs)
    names = list(config_names) if config_names is not None else list(PAPER_CONFIG_ORDER)
    plan = ExperimentPlan.from_sweep(list(spec_map), names,
                                     memory_modes=(perfect_memory,),
                                     strategies=(strategy,))
    runs = execute_requests(plan, spec_map, jobs=jobs, latency_model=latency_model,
                            engine=engine)
    results: Dict[str, BenchmarkResult] = {}
    for benchmark in spec_map:
        result = BenchmarkResult(benchmark=benchmark, perfect_memory=perfect_memory)
        for name in names:
            result.runs[name] = runs[RunRequest(benchmark, name, perfect_memory,
                                                strategy)]
        results[benchmark] = result
    return results
