"""Running a benchmark across machine configurations.

A *benchmark* here is the unit of the paper's evaluation: one application
(e.g. the JPEG encoder) expressed as three programs — a scalar version, a
µSIMD version and a Vector-µSIMD version, all sharing the same scalar (R0)
region code.  Each machine family executes its own flavour:

============  =================
family        program flavour
============  =================
VLIW          scalar
+µSIMD        µSIMD
+Vector1/2    Vector-µSIMD
============  =================

:func:`run_benchmark` compiles and runs the right flavour on every requested
configuration (optionally with perfect memory) and returns the per-config
:class:`~repro.sim.stats.RunStats` keyed by configuration name, which is the
raw material of every figure and table in :mod:`repro.experiments`.

:func:`run_benchmarks` is the batched, parallel entry point: it expands a
set of benchmarks into an :class:`~repro.sim.plan.ExperimentPlan`, executes
the independent (benchmark × configuration × memory-mode) runs either
serially or across a ``multiprocessing`` pool (``jobs=N``), and merges the
per-worker shards deterministically — a parallel sweep is byte-identical to
a serial one.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.compiler.ir import ISAFlavor, KernelProgram
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.machine.config import MachineConfig, PAPER_CONFIG_ORDER, get_config
from repro.machine.latency import LatencyModel
from repro.sim.plan import ExperimentPlan, RunRequest, execute_plan
from repro.sim.stats import RunStats, merge_run_maps

__all__ = [
    "BenchmarkSpec",
    "BenchmarkResult",
    "flavor_for_config",
    "run_benchmark",
    "run_benchmarks",
    "execute_requests",
    "default_jobs",
]


def flavor_for_config(config: MachineConfig) -> ISAFlavor:
    """Which program flavour a configuration family executes."""
    if config.has_vector:
        return ISAFlavor.VECTOR
    if config.has_usimd:
        return ISAFlavor.USIMD
    return ISAFlavor.SCALAR


@dataclass
class BenchmarkSpec:
    """One benchmark: a name plus its three program flavours."""

    name: str
    programs: Dict[ISAFlavor, KernelProgram]
    description: str = ""

    def __post_init__(self) -> None:
        if ISAFlavor.SCALAR not in self.programs:
            raise ValueError(f"benchmark {self.name!r} needs at least a scalar program")

    def program_for(self, config: MachineConfig) -> KernelProgram:
        """The program flavour ``config`` executes (µSIMD/vector fall back to scalar)."""
        flavor = flavor_for_config(config)
        if flavor in self.programs:
            return self.programs[flavor]
        return self.programs[ISAFlavor.SCALAR]

    def flavors(self) -> Sequence[ISAFlavor]:
        return tuple(self.programs.keys())


@dataclass
class BenchmarkResult:
    """Results of one benchmark over a set of configurations."""

    benchmark: str
    perfect_memory: bool
    runs: Dict[str, RunStats] = field(default_factory=dict)

    def __getitem__(self, config_name: str) -> RunStats:
        return self.runs[config_name]

    def __contains__(self, config_name: str) -> bool:
        return config_name in self.runs

    def config_names(self) -> Sequence[str]:
        return tuple(self.runs.keys())

    def speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Whole-application speed-up of one configuration over another."""
        return self.runs[config_name].speedup_over(self.runs[baseline_name])

    def vector_region_speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Vector-region speed-up of one configuration over another."""
        return self.runs[config_name].vector_region_speedup_over(self.runs[baseline_name])

    def scalar_region_speedup_over(self, config_name: str, baseline_name: str) -> float:
        """Scalar-region speed-up of one configuration over another."""
        return self.runs[config_name].scalar_region_speedup_over(self.runs[baseline_name])


def run_benchmark(spec: BenchmarkSpec,
                  config_names: Optional[Iterable[str]] = None,
                  perfect_memory: bool = False,
                  latency_model: Optional[LatencyModel] = None,
                  engine: Optional[str] = None) -> BenchmarkResult:
    """Run ``spec`` on every configuration in ``config_names``.

    ``config_names`` defaults to the full Table-2 set in the paper's
    presentation order.  Every configuration gets a cold memory hierarchy —
    the programs themselves model the reuse between their regions.
    ``engine`` selects the execution tier (trace-compiled by default).
    """
    names = list(config_names) if config_names is not None else list(PAPER_CONFIG_ORDER)
    result = BenchmarkResult(benchmark=spec.name, perfect_memory=perfect_memory)
    for name in names:
        config = get_config(name)
        machine = VectorMicroSimdVliwMachine(config, latency_model=latency_model,
                                             perfect_memory=perfect_memory)
        program = spec.program_for(config)
        result.runs[name] = machine.run(program, engine=engine)
    return result


# ---------------------------------------------------------------------------
# Batched / parallel execution
# ---------------------------------------------------------------------------

def default_jobs() -> int:
    """Worker count used when callers ask for "parallel" without a number.

    ``REPRO_JOBS`` overrides; otherwise the CPU count (at least 1).
    """
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {env!r}") from exc
    return max(1, os.cpu_count() or 1)


#: Per-worker state: the benchmark specs and latency model of the current
#: pool.  Workers re-use the process-wide compile cache across tasks, so a
#: worker that simulates several configurations of one benchmark schedules
#: each distinct (program, configuration) pair once.
_WORKER_STATE: Optional[tuple] = None


def _worker_init(specs: Mapping[str, BenchmarkSpec],
                 latency_model: Optional[LatencyModel],
                 engine: Optional[str]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (specs, latency_model, engine)


def _worker_run(request: RunRequest) -> RunStats:
    specs, latency_model, engine = _WORKER_STATE
    shard = execute_plan(ExperimentPlan([request]), specs,
                         latency_model=latency_model, engine=engine)
    return shard[request]


def _as_spec_map(specs: Union[Mapping[str, BenchmarkSpec], Iterable[BenchmarkSpec]]
                 ) -> Dict[str, BenchmarkSpec]:
    if isinstance(specs, Mapping):
        return dict(specs)
    if isinstance(specs, BenchmarkSpec):
        specs = [specs]
    return {spec.name: spec for spec in specs}


def execute_requests(requests: Iterable[RunRequest],
                     specs: Union[Mapping[str, BenchmarkSpec], Iterable[BenchmarkSpec]],
                     jobs: int = 1,
                     latency_model: Optional[LatencyModel] = None,
                     engine: Optional[str] = None
                     ) -> Dict[RunRequest, RunStats]:
    """Execute a batch of runs, optionally across worker processes.

    Every request is independent (its own warmed memory hierarchy), so the
    batch parallelises trivially.  Results are merged with
    :func:`repro.sim.stats.merge_run_maps` in request order regardless of
    completion order, making ``jobs=N`` byte-identical to ``jobs=1``.

    ``jobs < 2`` — or a batch too small to amortise a pool — runs in
    process through the same serial fast path workers use.  ``engine``
    selects the execution tier (trace-compiled by default); serial,
    parallel, trace and interpreter all produce byte-identical statistics.
    """
    plan = requests if isinstance(requests, ExperimentPlan) else ExperimentPlan(requests)
    spec_map = _as_spec_map(specs)
    missing = [r.benchmark for r in plan if r.benchmark not in spec_map]
    if missing:
        raise KeyError(f"no spec for benchmarks {sorted(set(missing))!r}")
    if jobs < 2 or len(plan) < 2:
        return execute_plan(plan, spec_map, latency_model=latency_model,
                            engine=engine)

    # Fork shares the already-built program IR with the workers for free;
    # macOS/Windows use spawn (fork is unsafe under Objective-C frameworks
    # and threaded BLAS) and pickle the specs once per worker instead.
    context = multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn")
    workers = min(jobs, len(plan))
    chunksize = max(1, len(plan) // (workers * 4))
    with context.Pool(processes=workers, initializer=_worker_init,
                      initargs=(spec_map, latency_model, engine)) as pool:
        results = pool.map(_worker_run, plan.requests, chunksize=chunksize)
    shards = [{request: stats} for request, stats in zip(plan.requests, results)]
    return merge_run_maps(shards, order=plan.requests)


def run_benchmarks(specs: Union[Mapping[str, BenchmarkSpec], Iterable[BenchmarkSpec]],
                   config_names: Optional[Iterable[str]] = None,
                   perfect_memory: bool = False,
                   jobs: int = 1,
                   latency_model: Optional[LatencyModel] = None,
                   engine: Optional[str] = None
                   ) -> Dict[str, BenchmarkResult]:
    """Run several benchmarks over several configurations, possibly in parallel.

    The batched, engine-backed counterpart of :func:`run_benchmark`: the
    (benchmark × configuration) cross product becomes one
    :class:`~repro.sim.plan.ExperimentPlan`, compilations are shared through
    the compile cache, and ``jobs=N`` distributes the independent runs over
    ``N`` worker processes.  Returns one :class:`BenchmarkResult` per
    benchmark, keyed and ordered by benchmark name as supplied.
    ``engine`` selects the execution tier (trace-compiled by default).
    """
    spec_map = _as_spec_map(specs)
    names = list(config_names) if config_names is not None else list(PAPER_CONFIG_ORDER)
    plan = ExperimentPlan.from_sweep(list(spec_map), names,
                                     memory_modes=(perfect_memory,))
    runs = execute_requests(plan, spec_map, jobs=jobs, latency_model=latency_model,
                            engine=engine)
    results: Dict[str, BenchmarkResult] = {}
    for benchmark in spec_map:
        result = BenchmarkResult(benchmark=benchmark, perfect_memory=perfect_memory)
        for name in names:
            result.runs[name] = runs[RunRequest(benchmark, name, perfect_memory)]
        results[benchmark] = result
    return results
