"""The trace-compiled executor: batched address streams, vectorized memory.

:class:`TraceExecutionEngine` produces statistics *identical* — field for
field, counter for counter — to the interpreting
:class:`~repro.sim.fast.ExecutionEngine`, but without walking the loop nest:

* every per-execution quantity except memory stalls (initiation interval,
  operation and micro-operation counts, access counts) is loop invariant,
  so the per-region totals are ``executions × static value`` — pure
  arithmetic over the :class:`~repro.compiler.trace.SegmentCounts` records;
* the memory stalls are computed by materializing the program's global
  address stream in bounded chunks
  (:meth:`~repro.compiler.trace.TraceProgram.materialize`) and replaying
  each chunk through the batched memory hierarchy
  (:meth:`~repro.memory.hierarchy.MemoryHierarchy.replay_stream`), which
  preserves the interpreter's exact access interleaving;
* under a *perfect* hierarchy every latency is a static function of the
  operation, so even the stall pass collapses to closed form and no
  address is ever materialized.

The interpreter remains the reference oracle; the equivalence is enforced
by the property-based tests in ``tests/test_trace_engine.py``.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.scheduler import CompiledProgram
from repro.compiler.trace import TraceLoweringError, TraceProgram, trace_program
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.stream import AccessStream, StreamOp
from repro.sim.stats import RunStats

__all__ = ["TraceExecutionEngine", "DEFAULT_CHUNK_SIZE"]

#: Upper bound on the number of access instances materialized at once;
#: keeps the working set of one chunk to a few tens of megabytes no matter
#: how long the simulated program runs.
DEFAULT_CHUNK_SIZE = 1 << 20


class TraceExecutionEngine:
    """Executes a compiled program by replaying its compiled address trace."""

    def __init__(self, compiled: CompiledProgram, hierarchy: MemoryHierarchy,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.compiled = compiled
        self.hierarchy = hierarchy
        self.chunk_size = chunk_size
        #: Set when :meth:`run` delegated to the interpreter because the
        #: program fell outside the trace tier's affine contract; ``None``
        #: after a normal trace-tier run.
        self.fallback_reason: "str | None" = None

    # ------------------------------------------------------------------ run

    def run(self) -> RunStats:
        """Execute the whole program once and return its statistics."""
        program = self.compiled.program
        try:
            trace = trace_program(self.compiled)
        except TraceLoweringError as exc:
            # Outside the affine contract (e.g. an address using a loop
            # variable from a sibling nest): delegate to the interpreting
            # oracle, loudly.  Lowering happens before any hierarchy or
            # stats mutation, so the hand-off is clean; the reason is
            # recorded for callers and tests — never a silent wrong-stats
            # path.
            self.fallback_reason = str(exc)
            from repro.sim.fast import ExecutionEngine
            return ExecutionEngine(self.compiled, self.hierarchy).run()
        self.fallback_reason = None
        stats = RunStats(program_name=program.name,
                         config_name=self.compiled.config.name,
                         flavor=program.flavor.value)
        for name, info in program.regions.items():
            stats.region(name, vectorizable=info.vectorizable)

        # analytic base statistics (everything but memory stalls)
        for segment in trace.segments:
            region = stats.region(segment.region,
                                  vectorizable=segment.vectorizable)
            if not segment.operations:
                continue
            executions = segment.executions
            region.cycles += executions * segment.initiation_interval
            region.operations += executions * segment.operations
            region.micro_ops += executions * segment.micro_ops
            region.memory_accesses += executions * segment.memory_ops
            region.segment_executions += executions

        if not trace.ops:
            return stats
        if self.hierarchy.perfect:
            self._run_perfect(trace, stats)
        else:
            self._run_realistic(trace, stats)
        return stats

    # ------------------------------------------------------------- realistic

    def _run_realistic(self, trace: TraceProgram, stats: RunStats) -> None:
        stream_ops = tuple(
            StreamOp(is_vector=t.op.is_vector, is_store=t.op.is_store,
                     stride_bytes=t.op.stride_bytes,
                     vector_length=t.op.vector_length)
            for t in trace.ops)
        assumed = np.array([t.op.assumed_latency for t in trace.ops],
                           dtype=np.int64)
        region_names = list(stats.regions)
        region_index = {name: i for i, name in enumerate(region_names)}
        op_region = np.array([region_index[t.region] for t in trace.ops],
                             dtype=np.int64)
        stalls = np.zeros(len(region_names), dtype=np.int64)
        hierarchy = self.hierarchy
        for low, high in trace.chunks(self.chunk_size):
            op_index, addresses = trace.materialize(low, high)
            result = hierarchy.replay_stream(AccessStream(
                ops=stream_ops, op_index=op_index, addresses=addresses))
            extra = result.latencies - assumed[op_index]
            np.maximum(extra, 0, out=extra)
            # integer-exact: the weighted bincount sums int64 values well
            # below the float64 integer range
            chunk = np.bincount(op_region[op_index], weights=extra,
                                minlength=len(region_names))
            stalls += chunk.astype(np.int64)
        for name, stall in zip(region_names, stalls.tolist()):
            if stall:
                region = stats.regions[name]
                region.cycles += stall
                region.memory_stall_cycles += stall

    # --------------------------------------------------------------- perfect

    def _run_perfect(self, trace: TraceProgram, stats: RunStats) -> None:
        """Closed-form stall/counter pass for the Figure-5(a) methodology.

        Every access latency is a static function of the operation, so the
        per-region stall totals and the hierarchy path counters scale with
        the instance counts; no address stream is materialized.
        """
        hierarchy = self.hierarchy
        cfg = hierarchy.config
        path = hierarchy.stats
        element_bytes = hierarchy.l2.element_bytes
        scalar_count = 0
        vector_count = 0
        for t in trace.ops:
            op = t.op
            count = t.count
            if op.is_vector:
                vector_count += count
                if op.stride_bytes != element_bytes:
                    path.vector_non_unit_stride += count
                latency = hierarchy.perfect_vector_latency(op.vector_length)
            else:
                scalar_count += count
                latency = cfg.l1_latency
            extra = latency - op.assumed_latency
            if extra > 0:
                region = stats.regions[t.region]
                region.cycles += count * extra
                region.memory_stall_cycles += count * extra
        path.scalar_accesses += scalar_count
        path.vector_accesses += vector_count
        if scalar_count:
            path.level_hits["l1"] = path.level_hits.get("l1", 0) + scalar_count
        if vector_count:
            path.level_hits["l2"] = path.level_hits.get("l2", 0) + vector_count
