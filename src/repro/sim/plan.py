"""Declarative experiment plans: batched (benchmark × config × memory) runs.

The paper's evaluation is a sweep: the benchmark suite (the paper's six
applications; any registered benchmark works), ten Table-2
configurations, perfect and realistic memory.  The seed code hand-rolled
that sweep in every figure/table module; this module makes the sweep a
*value* so one engine can execute it — deduplicating compilations through
the content-addressed compile cache, skipping runs that are already
memoised, and (via :func:`repro.core.runner.run_benchmarks` /
``execute_requests``) fanning independent runs out over worker processes.

* :class:`RunRequest` — one (benchmark, configuration, memory-mode) run.
  Hashable and totally ordered, so requests can key caches and merge
  deterministically.
* :class:`ExperimentSweep` — the data form in which an experiment module
  declares what it needs (``None`` fields mean "whatever the evaluation
  provides"); see the ``SWEEP`` constants in :mod:`repro.experiments`.
* :class:`ExperimentPlan` — an ordered, de-duplicated batch of requests.
* :func:`execute_plan` — the serial fast path: compile each distinct
  (program, configuration) pair once, then run every request against a
  fresh (warmed) hierarchy.  Parallel execution lives in
  :mod:`repro.core.runner`, which splits a plan over workers and merges
  shards with :func:`repro.sim.stats.merge_run_maps`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.sim.stats import RunStats, merge_run_maps

__all__ = ["RunRequest", "ExperimentSweep", "ExperimentPlan", "execute_plan"]


@dataclass(frozen=True, order=True)
class RunRequest:
    """One simulation: a benchmark on a configuration in one memory mode,
    compiled under one scheduler strategy."""

    benchmark: str
    config_name: str
    perfect_memory: bool = False
    strategy: str = "baseline"

    def key(self) -> Tuple[str, str, bool, str]:
        """The memoisation key used by :class:`SuiteEvaluation`."""
        return (self.benchmark, self.config_name, self.perfect_memory,
                self.strategy)


@dataclass(frozen=True)
class ExperimentSweep:
    """What one experiment needs, as data.

    ``benchmarks=None`` and ``config_names=None`` mean "all benchmarks /
    configurations of the evaluation"; ``memory_modes`` lists the
    ``perfect_memory`` values required (most experiments use realistic
    memory only, Figure 5 needs both).  ``strategies=None`` means "whatever
    the evaluation compiles with" (baseline unless told otherwise).
    """

    benchmarks: Optional[Tuple[str, ...]] = None
    config_names: Optional[Tuple[str, ...]] = None
    memory_modes: Tuple[bool, ...] = (False,)
    strategies: Optional[Tuple[str, ...]] = None

    def requests(self, default_benchmarks: Sequence[str],
                 default_configs: Sequence[str],
                 default_strategies: Sequence[str] = ("baseline",),
                 ) -> Tuple[RunRequest, ...]:
        """Expand the sweep against an evaluation's defaults."""
        benchmarks = self.benchmarks if self.benchmarks is not None else tuple(default_benchmarks)
        configs = self.config_names if self.config_names is not None else tuple(default_configs)
        strategies = self.strategies if self.strategies is not None else tuple(default_strategies)
        return tuple(RunRequest(benchmark, config, perfect, strategy)
                     for benchmark in benchmarks
                     for config in configs
                     for perfect in self.memory_modes
                     for strategy in strategies)


class ExperimentPlan:
    """An ordered, de-duplicated batch of :class:`RunRequest` instances."""

    def __init__(self, requests: Iterable[RunRequest] = ()) -> None:
        seen: Dict[RunRequest, None] = {}
        for request in requests:
            seen.setdefault(request)
        self._requests: Tuple[RunRequest, ...] = tuple(seen)

    @classmethod
    def from_sweep(cls, benchmarks: Sequence[str], config_names: Sequence[str],
                   memory_modes: Sequence[bool] = (False,),
                   strategies: Sequence[str] = ("baseline",),
                   ) -> "ExperimentPlan":
        """The full cross product, in deterministic presentation order."""
        sweep = ExperimentSweep(benchmarks=tuple(benchmarks),
                                config_names=tuple(config_names),
                                memory_modes=tuple(bool(m) for m in memory_modes),
                                strategies=tuple(strategies))
        return cls(sweep.requests((), ()))

    @property
    def requests(self) -> Tuple[RunRequest, ...]:
        return self._requests

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self):
        return iter(self._requests)

    def without(self, done: Iterable[RunRequest]) -> "ExperimentPlan":
        """The sub-plan of requests not yet satisfied.

        ``done`` can be any iterable of satisfied requests — the keys of an
        in-process memo, or of the batch a persistent
        :class:`~repro.store.ResultStore` answered
        (:func:`repro.core.runner.execute_requests` consults the store with
        exactly this method before simulating anything).
        """
        done_set = set(done)
        return ExperimentPlan(r for r in self._requests if r not in done_set)

    def shards(self, size: int) -> Tuple["ExperimentPlan", ...]:
        """Split the plan into consecutive sub-plans of at most ``size`` runs.

        Sharding is what makes long design-space sweeps resumable: each
        shard's results are persisted to the store as soon as the shard
        completes, so an interrupted sweep loses at most one shard of work
        and a re-run skips everything already stored.
        """
        if size < 1:
            raise ValueError("shard size must be >= 1")
        return tuple(ExperimentPlan(self._requests[i:i + size])
                     for i in range(0, len(self._requests), size))

    def fingerprint(self) -> str:
        """Stable identity of this plan's request set (order-sensitive).

        Two processes expanding the same sweep build byte-identical plans,
        so the fingerprint is the natural **lease key** for cooperative
        sharded execution (:mod:`repro.store.leases`): it names *which
        requests* a shard covers, nothing about who runs them or how.
        Callers coordinating across different input parameters must scope
        the key themselves (``run_exploration`` prefixes a sweep-scope
        hash) — the plan cannot see workload parameters, only names.
        """
        key = tuple((r.benchmark, r.config_name, r.perfect_memory, r.strategy)
                    for r in self._requests)
        return hashlib.sha256(repr(("repro-plan/2", key)).encode()).hexdigest()

    def benchmarks(self) -> Tuple[str, ...]:
        """Benchmark names touched by the plan, in first-appearance order."""
        seen: Dict[str, None] = {}
        for request in self._requests:
            seen.setdefault(request.benchmark)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentPlan({len(self._requests)} runs)"


def execute_plan(plan: ExperimentPlan,
                 specs: Mapping[str, "BenchmarkSpec"],
                 latency_model=None,
                 engine: Optional[str] = None) -> Dict[RunRequest, RunStats]:
    """Execute every request of ``plan`` serially, sharing compilations.

    ``specs`` maps benchmark names to
    :class:`~repro.core.runner.BenchmarkSpec` objects.  Each request gets
    its own (warmed) memory hierarchy — runs are fully independent, which
    is the invariant the parallel executor relies on — while the
    process-wide compile cache collapses the schedule work of the ten
    configurations and two memory modes onto one pass per distinct
    (program, configuration) pair.  ``engine`` selects the execution tier
    (trace-compiled by default); the statistics are tier independent.
    """
    from repro.core.architecture import VectorMicroSimdVliwMachine
    from repro.machine.config import get_config

    results: Dict[RunRequest, RunStats] = {}
    for request in plan:
        spec = specs[request.benchmark]
        config = get_config(request.config_name)
        machine = VectorMicroSimdVliwMachine(
            config, latency_model=latency_model,
            perfect_memory=request.perfect_memory)
        results[request] = machine.run(spec.program_for(config), engine=engine,
                                       strategy=request.strategy)
    return merge_run_maps([results], order=plan.requests)
