"""Cycle-stepping engine for single segment instances.

:class:`CycleAccurateEngine` replays one scheduled segment clock tick by
clock tick: every cycle it either issues the long instruction the static
schedule assigned to that cycle or, when an earlier memory operation took
longer than the schedule assumed, burns a stall cycle with the whole
pipeline frozen (the paper's stall-on-miss semantics).  The result is a
:class:`CycleTrace` with a per-cycle event log, which the examples use to
animate the Figure-4 motion-estimation schedule and which the tests use to
cross-validate the fast executor (:mod:`repro.sim.fast`): for any segment
and any memory state, ``fast = trace.cycles - trace.drain_cycles``.

The module also provides :func:`verify_schedule`, an independent checker
that replays a schedule against the reservation table and the dependence
graph and reports any violated constraint.  The property-based tests drive
it with randomly generated segments to show the scheduler never produces an
illegal packing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.dataflow import build_dependence_graph
from repro.compiler.ir import LoopVar
from repro.compiler.scheduler import Schedule, ScheduledOperation, _edge_latency
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.machine.resources import ReservationTable, capacities_for, requests_for
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["CycleTrace", "CycleAccurateEngine", "verify_schedule", "ScheduleViolation"]


@dataclass
class CycleTrace:
    """Outcome of one cycle-stepped segment execution."""

    cycles: int
    stall_cycles: int
    drain_cycles: int
    events: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def issue_cycles(self) -> int:
        """Cycles spent issuing instructions (total minus drain)."""
        return self.cycles - self.drain_cycles

    def format_log(self) -> str:
        """Human-readable per-cycle event log."""
        lines = [f"{cycle:5d}  {text}" for cycle, text in self.events]
        lines.append(f"total: {self.cycles} cycles "
                     f"({self.stall_cycles} stall, {self.drain_cycles} drain)")
        return "\n".join(lines)


class CycleAccurateEngine:
    """Steps one scheduled segment through time, cycle by cycle."""

    def __init__(self, config: MachineConfig,
                 latency_model: Optional[LatencyModel] = None) -> None:
        self.config = config
        self.latency_model = latency_model or LatencyModel()

    def run_segment(self, schedule: Schedule, hierarchy: MemoryHierarchy,
                    env: Optional[Dict[LoopVar, int]] = None) -> CycleTrace:
        """Execute one instance of ``schedule`` against ``hierarchy``."""
        if schedule.pipelined_interval is not None:
            # a modulo schedule's flat entry cycles can lie at or beyond the
            # II, so stepping `range(initiation_interval)` would silently
            # drop issue groups — the cycle-stepper models one iteration at
            # a time and cannot overlap them
            raise ValueError(
                "CycleAccurateEngine cannot replay a software-pipelined "
                "schedule; use the fast or trace executors")
        env = env or {}
        groups = schedule.by_cycle()
        events: List[Tuple[int, str]] = []
        clock = 0
        stall_remaining = 0
        total_stall = 0

        for scheduled_cycle in range(schedule.initiation_interval):
            # burn any pending stall cycles first: the whole pipe is frozen.
            while stall_remaining > 0:
                events.append((clock, "stall"))
                stall_remaining -= 1
                clock += 1

            entries = groups.get(scheduled_cycle, [])
            if entries:
                label = " | ".join(e.operation.comment or e.operation.opcode
                                   for e in entries)
                events.append((clock, f"issue: {label}"))
            else:
                events.append((clock, "issue: (empty slot)"))
            for entry in entries:
                extra = self._memory_extra_latency(entry, hierarchy, env)
                if extra > 0:
                    stall_remaining += extra
                    total_stall += extra
                    events.append((clock, f"  -> memory stall of {extra} cycles "
                                          f"({entry.operation.opcode})"))
            clock += 1

        while stall_remaining > 0:
            events.append((clock, "stall"))
            stall_remaining -= 1
            clock += 1

        drain = schedule.drain_cycles
        for _ in range(drain):
            events.append((clock, "drain"))
            clock += 1

        return CycleTrace(cycles=clock, stall_cycles=total_stall,
                          drain_cycles=drain, events=events)

    def _memory_extra_latency(self, entry: ScheduledOperation,
                              hierarchy: MemoryHierarchy,
                              env: Dict[LoopVar, int]) -> int:
        op = entry.operation
        if not op.is_memory:
            return 0
        address = op.address.evaluate(env)
        if op.is_vector_memory:
            result = hierarchy.vector_access(address, op.stride_bytes,
                                             op.vector_length, is_store=op.is_store)
        else:
            result = hierarchy.scalar_access(address, is_store=op.is_store)
        return max(0, result.latency - entry.assumed_latency)


@dataclass(frozen=True)
class ScheduleViolation:
    """One constraint violated by a schedule (empty list = schedule is legal)."""

    kind: str
    detail: str


def verify_schedule(schedule: Schedule, config: MachineConfig,
                    latency_model: Optional[LatencyModel] = None) -> List[ScheduleViolation]:
    """Independently check a schedule against resources and dependences.

    Returns a list of violations; an empty list means the schedule is legal.
    This is intentionally a from-scratch re-implementation of the
    constraints (it does not reuse the scheduler's placement logic) so it
    can serve as an oracle in the property-based tests.
    """
    latency_model = latency_model or LatencyModel()
    violations: List[ScheduleViolation] = []

    # resource constraints
    table = ReservationTable(capacities_for(config))
    for entry in sorted(schedule.entries, key=lambda e: e.cycle):
        requests = requests_for(entry.operation.opcode, entry.operation.vector_length,
                                config, latency_model)
        if not table.fits(entry.cycle, requests):
            violations.append(ScheduleViolation(
                kind="resource",
                detail=f"{entry.operation.opcode} at cycle {entry.cycle} "
                       f"oversubscribes a resource"))
        else:
            table.reserve(entry.cycle, requests)

    # dependence constraints
    ops = list(schedule.segment.operations)
    position = {id(op): index for index, op in enumerate(ops)}
    cycle_of = {}
    for entry in schedule.entries:
        cycle_of[position[id(entry.operation)]] = entry.cycle
    graph = build_dependence_graph(schedule.segment)
    for edge in graph.edges:
        producer = ops[edge.producer]
        latency = _edge_latency(edge, producer, producer.vector_length,
                                config, latency_model)
        earliest = cycle_of[edge.producer] + latency
        if cycle_of[edge.consumer] < earliest:
            violations.append(ScheduleViolation(
                kind="dependence",
                detail=f"{edge.kind.value} edge {edge.producer}->{edge.consumer} "
                       f"violated: consumer at {cycle_of[edge.consumer]}, "
                       f"earliest legal {earliest}"))
    return violations
