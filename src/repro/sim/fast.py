"""The production executor: loop-nest walker with stall accounting.

The machine of the paper is statically scheduled and in-order; at run time
the only deviations from the compile-time schedule are pipeline stalls
caused by memory behaviour the compiler did not (or could not) anticipate:

* a scalar/µSIMD access that misses in the L1;
* a vector access that misses in the L2 vector cache;
* a vector access whose stride is not one (served at one element per cycle
  instead of the wide-port rate assumed by the schedule);
* bank conflicts in the two-bank vector cache;
* coherency write-backs when the vector path touches a line dirty in the L1.

Hence the executed time of one segment iteration is its scheduled initiation
interval plus the sum of the extra latencies of its memory operations.  The
executor walks the loop nest, evaluates every memory operation's affine
address for the current loop indices, asks the memory hierarchy for the
actual latency and accumulates the difference against the scheduled
("assumed") latency.

Loops whose bodies contain no memory operations are executed analytically
(#iterations × initiation interval) which keeps pure-computation kernels
cheap to simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler.ir import KernelProgram, LoopNode, LoopVar, Segment
from repro.compiler.scheduler import CompiledProgram, Schedule, compile_program
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.stats import RunStats

__all__ = ["ExecutionEngine", "execute_program"]


class ExecutionEngine:
    """Executes a compiled program against a memory hierarchy."""

    def __init__(self, compiled: CompiledProgram, hierarchy: MemoryHierarchy) -> None:
        self.compiled = compiled
        self.hierarchy = hierarchy
        self._memory_free: Dict[int, bool] = {}

    # ------------------------------------------------------------------ run

    def run(self) -> RunStats:
        """Execute the whole program once and return its statistics."""
        program = self.compiled.program
        stats = RunStats(program_name=program.name,
                         config_name=self.compiled.config.name,
                         flavor=program.flavor.value)
        for name, info in program.regions.items():
            stats.region(name, vectorizable=info.vectorizable)
        env: Dict[LoopVar, int] = {}
        self._execute_nodes(program.body, env, stats)
        return stats

    # ----------------------------------------------------------- traversal

    def _execute_nodes(self, nodes, env: Dict[LoopVar, int], stats: RunStats) -> None:
        for node in nodes:
            if isinstance(node, Segment):
                self._execute_segment(node, env, stats)
            elif isinstance(node, LoopNode):
                self._execute_loop(node, env, stats)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected node {node!r}")

    def _execute_loop(self, loop: LoopNode, env: Dict[LoopVar, int],
                      stats: RunStats) -> None:
        if loop.trip_count == 0:
            return
        if self._memory_free_subtree(loop):
            # No memory operations anywhere inside: every iteration costs the
            # same, so execute one representative iteration and scale.
            marker = _StatsMarker(stats)
            env[loop.var] = 0
            self._execute_nodes(loop.body, env, stats)
            del env[loop.var]
            marker.scale(loop.trip_count)
            return
        for iteration in range(loop.trip_count):
            env[loop.var] = iteration
            self._execute_nodes(loop.body, env, stats)
        del env[loop.var]

    def _memory_free_subtree(self, loop: LoopNode) -> bool:
        key = id(loop)
        cached = self._memory_free.get(key)
        if cached is not None:
            return cached
        result = True
        for node in loop.body:
            if isinstance(node, Segment):
                if any(op.is_memory for op in node.operations):
                    result = False
                    break
            elif isinstance(node, LoopNode):
                if not self._memory_free_subtree(node):
                    result = False
                    break
        self._memory_free[key] = result
        return result

    # ------------------------------------------------------------- segments

    def _execute_segment(self, segment: Segment, env: Dict[LoopVar, int],
                         stats: RunStats) -> None:
        schedule = self.compiled.schedule_for(segment)
        if not schedule.entries:
            return
        stall_cycles = 0
        accesses = 0
        for entry in schedule.memory_operations():
            op = entry.operation
            address = op.address.evaluate(env)
            if op.is_vector_memory:
                result = self.hierarchy.vector_access(
                    address, op.stride_bytes, op.vector_length, is_store=op.is_store)
            else:
                result = self.hierarchy.scalar_access(address, is_store=op.is_store)
            accesses += 1
            stall_cycles += max(0, result.latency - entry.assumed_latency)

        cycles = schedule.initiation_interval + stall_cycles
        region_info = self.compiled.program.regions.get(segment.region)
        region = stats.region(segment.region,
                              vectorizable=bool(region_info and region_info.vectorizable))
        region.add_segment(
            cycles=cycles,
            operations=len(segment.operations),
            micro_ops=segment.static_micro_ops,
            stall_cycles=stall_cycles,
            memory_accesses=accesses,
        )


class _StatsMarker:
    """Snapshot of a RunStats used to scale memory-free loop bodies."""

    def __init__(self, stats: RunStats) -> None:
        self.stats = stats
        self.before = {
            name: (r.cycles, r.operations, r.micro_ops, r.segment_executions)
            for name, r in stats.regions.items()
        }

    def scale(self, factor: int) -> None:
        """Multiply everything accumulated since the snapshot by ``factor``."""
        for name, region in self.stats.regions.items():
            cycles0, ops0, uops0, segs0 = self.before.get(name, (0, 0, 0, 0))
            region.cycles = cycles0 + (region.cycles - cycles0) * factor
            region.operations = ops0 + (region.operations - ops0) * factor
            region.micro_ops = uops0 + (region.micro_ops - uops0) * factor
            region.segment_executions = (segs0
                                         + (region.segment_executions - segs0) * factor)


def execute_program(program: KernelProgram, config: MachineConfig,
                    perfect_memory: bool = False,
                    latency_model: Optional[LatencyModel] = None,
                    hierarchy: Optional[MemoryHierarchy] = None) -> RunStats:
    """Compile and execute ``program`` on ``config`` in one call.

    ``perfect_memory`` selects the Figure-5(a) methodology (every access hits
    with its level's latency and vector accesses stream at the stride-one
    rate).  A pre-existing ``hierarchy`` can be passed to model cache state
    shared across several programs; by default each call gets a cold one.
    """
    compiled = compile_program(program, config, latency_model)
    if hierarchy is None:
        hierarchy = MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                    l2_port_words=config.l2_port_words,
                                    perfect=perfect_memory)
    engine = ExecutionEngine(compiled, hierarchy)
    return engine.run()
