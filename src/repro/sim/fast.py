"""The interpreting executor: loop-nest walker with stall accounting.

Since the trace-compiled tier (:mod:`repro.sim.trace`) became the default,
this engine serves as the *reference oracle* — the executable definition of
the machine model that the trace tier is property-tested against — and as
the ``engine="interpreter"`` escape hatch.

The machine of the paper is statically scheduled and in-order; at run time
the only deviations from the compile-time schedule are pipeline stalls
caused by memory behaviour the compiler did not (or could not) anticipate:

* a scalar/µSIMD access that misses in the L1;
* a vector access that misses in the L2 vector cache;
* a vector access whose stride is not one (served at one element per cycle
  instead of the wide-port rate assumed by the schedule);
* bank conflicts in the two-bank vector cache;
* coherency write-backs when the vector path touches a line dirty in the L1.

Hence the executed time of one segment iteration is its scheduled initiation
interval plus the sum of the extra latencies of its memory operations.  The
executor walks the loop nest, evaluates every memory operation's affine
address for the current loop indices, asks the memory hierarchy for the
actual latency and accumulates the difference against the scheduled
("assumed") latency.

Two analytic fast paths keep the walk cheap:

* loops whose bodies contain no memory operations cost the same every
  iteration, so one representative iteration is executed and scaled;
* under a *perfect* memory hierarchy every access latency is an
  address-independent constant, so **every** loop is cost-invariant and the
  whole nest collapses the same way (the Figure-5a sweep becomes almost
  free).

Per-segment constants (initiation interval, operation and micro-operation
counts, memory-operation metadata) are precomputed once per compilation as
:class:`~repro.compiler.scheduler.SegmentSummary` records — the seed
executor recomputed them on every dynamic iteration, which dominated its
run time.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.compiler.ir import KernelProgram, LoopNode, LoopVar, Segment
from repro.compiler.scheduler import CompiledProgram
from repro.machine.config import MachineConfig
from repro.machine.latency import LatencyModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.stats import RunStats

__all__ = ["ExecutionEngine", "execute_program"]


class ExecutionEngine:
    """Executes a compiled program against a memory hierarchy."""

    def __init__(self, compiled: CompiledProgram, hierarchy: MemoryHierarchy) -> None:
        self.compiled = compiled
        self.hierarchy = hierarchy
        self._memory_free: Dict[int, bool] = {}
        # per-run cache: id(segment) -> (summary, RegionStats of current run)
        self._segment_state: Dict[int, tuple] = {}

    # ------------------------------------------------------------------ run

    def run(self) -> RunStats:
        """Execute the whole program once and return its statistics."""
        program = self.compiled.program
        stats = RunStats(program_name=program.name,
                         config_name=self.compiled.config.name,
                         flavor=program.flavor.value)
        for name, info in program.regions.items():
            stats.region(name, vectorizable=info.vectorizable)
        self._segment_state = {}
        env: Dict[LoopVar, int] = {}
        self._execute_nodes(program.body, env, stats)
        return stats

    # ----------------------------------------------------------- traversal

    def _execute_nodes(self, nodes, env: Dict[LoopVar, int], stats: RunStats) -> None:
        for node in nodes:
            if isinstance(node, Segment):
                self._execute_segment(node, env, stats)
            elif isinstance(node, LoopNode):
                self._execute_loop(node, env, stats)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected node {node!r}")

    def _execute_loop(self, loop: LoopNode, env: Dict[LoopVar, int],
                      stats: RunStats) -> None:
        trip_count = loop.trip_count
        if trip_count == 0:
            return
        if trip_count > 1 and self._invariant_subtree(loop):
            # Every iteration costs the same, so execute one representative
            # iteration and scale the accumulated statistics.
            marker = _StatsMarker(stats, self.hierarchy)
            env[loop.var] = 0
            self._execute_nodes(loop.body, env, stats)
            del env[loop.var]
            marker.scale(trip_count)
            return
        for iteration in range(trip_count):
            env[loop.var] = iteration
            self._execute_nodes(loop.body, env, stats)
        del env[loop.var]

    def _invariant_subtree(self, loop: LoopNode) -> bool:
        """True when one iteration of ``loop`` is representative of all.

        Holds when the body performs no memory accesses at all, or when the
        hierarchy is perfect — then every access completes in a constant,
        address-independent latency (Figure 5a methodology), so the loop
        index cannot influence the cost.
        """
        if self.hierarchy.perfect:
            return True
        return self._memory_free_subtree(loop)

    def _memory_free_subtree(self, loop: LoopNode) -> bool:
        key = id(loop)
        cached = self._memory_free.get(key)
        if cached is not None:
            return cached
        result = True
        for node in loop.body:
            if isinstance(node, Segment):
                if any(op.is_memory for op in node.operations):
                    result = False
                    break
            elif isinstance(node, LoopNode):
                if not self._memory_free_subtree(node):
                    result = False
                    break
        self._memory_free[key] = result
        return result

    # ------------------------------------------------------------- segments

    def _execute_segment(self, segment: Segment, env: Dict[LoopVar, int],
                         stats: RunStats) -> None:
        key = id(segment)
        state = self._segment_state.get(key)
        if state is None:
            summary = self.compiled.summary_for(segment)
            region = stats.region(summary.region, vectorizable=summary.vectorizable)
            state = (summary, region)
            self._segment_state[key] = state
        summary, region = state
        if not summary.operations:
            return
        stall_cycles = 0
        hierarchy = self.hierarchy
        for mem in summary.memory_ops:
            address = mem.address.evaluate(env)
            if mem.is_vector:
                result = hierarchy.vector_access(
                    address, mem.stride_bytes, mem.vector_length,
                    is_store=mem.is_store)
            else:
                result = hierarchy.scalar_access(address, is_store=mem.is_store)
            extra = result.latency - mem.assumed_latency
            if extra > 0:
                stall_cycles += extra
        region.add_segment(
            cycles=summary.initiation_interval + stall_cycles,
            operations=summary.operations,
            micro_ops=summary.micro_ops,
            stall_cycles=stall_cycles,
            memory_accesses=len(summary.memory_ops),
        )


class _StatsMarker:
    """Snapshot of run and hierarchy counters used to scale invariant loops."""

    _REGION_FIELDS = ("cycles", "operations", "micro_ops",
                      "memory_stall_cycles", "memory_accesses",
                      "segment_executions")
    _PATH_FIELDS = ("scalar_accesses", "vector_accesses",
                    "vector_non_unit_stride", "coherency_writebacks")

    def __init__(self, stats: RunStats, hierarchy: MemoryHierarchy) -> None:
        self.stats = stats
        self.hierarchy = hierarchy
        self.before = {
            name: tuple(getattr(r, f) for f in self._REGION_FIELDS)
            for name, r in stats.regions.items()
        }
        self.path_before = tuple(getattr(hierarchy.stats, f)
                                 for f in self._PATH_FIELDS)
        self.levels_before = dict(hierarchy.stats.level_hits)

    def scale(self, factor: int) -> None:
        """Multiply everything accumulated since the snapshot by ``factor``."""
        zeros = (0,) * len(self._REGION_FIELDS)
        for name, region in self.stats.regions.items():
            before = self.before.get(name, zeros)
            for field_name, base in zip(self._REGION_FIELDS, before):
                current = getattr(region, field_name)
                setattr(region, field_name, base + (current - base) * factor)
        path = self.hierarchy.stats
        for field_name, base in zip(self._PATH_FIELDS, self.path_before):
            current = getattr(path, field_name)
            setattr(path, field_name, base + (current - base) * factor)
        for level, count in path.level_hits.items():
            base = self.levels_before.get(level, 0)
            path.level_hits[level] = base + (count - base) * factor


def execute_program(program: KernelProgram, config: MachineConfig,
                    perfect_memory: bool = False,
                    latency_model: Optional[LatencyModel] = None,
                    hierarchy: Optional[MemoryHierarchy] = None,
                    engine: Optional[str] = None) -> RunStats:
    """Compile and execute ``program`` on ``config`` in one call.

    ``perfect_memory`` selects the Figure-5(a) methodology (every access hits
    with its level's latency and vector accesses stream at the stride-one
    rate).  A pre-existing ``hierarchy`` can be passed to model cache state
    shared across several programs; by default each call gets a cold one.
    Compilation goes through the process-wide compile cache, so repeated
    executions of the same (program, configuration) pair schedule once.

    ``engine`` selects the execution tier (``"trace"`` by default,
    ``"interpreter"`` for the reference oracle); both produce identical
    statistics.
    """
    from repro.compiler.cache import compile_cached
    from repro.sim.engines import make_engine

    compiled = compile_cached(program, config, latency_model)
    if hierarchy is None:
        hierarchy = MemoryHierarchy(config.memory, l1_ports=config.l1_ports,
                                    l2_port_words=config.l2_port_words,
                                    perfect=perfect_memory)
    return make_engine(engine, compiled, hierarchy).run()
