"""Timing simulation of compiled kernel programs.

Three execution tiers are provided (see ``docs/performance.md``):

* :mod:`repro.sim.trace` — the production executor.  Replays the
  trace-compiled address streams of a program
  (:mod:`repro.compiler.trace`) through the batched memory hierarchy; no
  per-iteration Python work survives on the hot path.
* :mod:`repro.sim.fast` — the interpreting reference executor.  It walks
  the loop nest of a compiled program, charges each segment iteration its
  scheduled initiation interval, evaluates the address of every memory
  operation and adds the run-time stall cycles (cache misses, bank
  conflicts, non-unit stride vector accesses, coherency write-backs)
  exactly as the paper's stall-on-violation machine model prescribes.
  The trace tier is defined to be — and property-tested to stay —
  statistics-identical to this walk.
* :mod:`repro.sim.vliw` — a cycle-stepping engine for a single segment
  instance, used to cross-validate the other tiers and to animate small
  kernels cycle by cycle (e.g. the Figure-4 schedule).

All produce :class:`repro.sim.stats.RunStats`, the per-region cycle and
operation accounting that the experiment layer turns into the paper's
figures and tables.  :func:`repro.sim.engines.make_engine` resolves the
``engine=`` argument every batched entry point accepts.

Batched execution is expressed through :mod:`repro.sim.plan`: a
:class:`~repro.sim.plan.RunRequest` names one (benchmark, configuration,
memory-mode) run, an :class:`~repro.sim.plan.ExperimentPlan` is an ordered
batch of them, and :func:`~repro.sim.plan.execute_plan` executes a plan
with compilations shared through the compile cache.  Shards from parallel
workers are recombined with :func:`repro.sim.stats.merge_run_maps`.
"""

from repro.sim.stats import RegionStats, RunStats, merge_run_maps
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.trace import TraceExecutionEngine
from repro.sim.engines import DEFAULT_ENGINE, ENGINE_NAMES, make_engine
from repro.sim.plan import ExperimentPlan, ExperimentSweep, RunRequest, execute_plan
from repro.sim.vliw import CycleAccurateEngine, CycleTrace

__all__ = [
    "RegionStats",
    "RunStats",
    "merge_run_maps",
    "ExecutionEngine",
    "TraceExecutionEngine",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "make_engine",
    "execute_program",
    "ExperimentPlan",
    "ExperimentSweep",
    "RunRequest",
    "execute_plan",
    "CycleAccurateEngine",
    "CycleTrace",
]
