"""Timing simulation of compiled kernel programs.

Two engines are provided:

* :mod:`repro.sim.fast` — the production executor.  It walks the loop nest
  of a compiled program, charges each segment iteration its scheduled
  initiation interval, evaluates the address of every memory operation and
  adds the run-time stall cycles (cache misses, bank conflicts, non-unit
  stride vector accesses, coherency write-backs) exactly as the paper's
  stall-on-violation machine model prescribes.
* :mod:`repro.sim.vliw` — a cycle-stepping engine for a single segment
  instance, used to cross-validate the fast executor and to animate small
  kernels cycle by cycle (e.g. the Figure-4 schedule).

Both produce :class:`repro.sim.stats.RunStats`, the per-region cycle and
operation accounting that the experiment layer turns into the paper's
figures and tables.

Batched execution is expressed through :mod:`repro.sim.plan`: a
:class:`~repro.sim.plan.RunRequest` names one (benchmark, configuration,
memory-mode) run, an :class:`~repro.sim.plan.ExperimentPlan` is an ordered
batch of them, and :func:`~repro.sim.plan.execute_plan` executes a plan
with compilations shared through the compile cache.  Shards from parallel
workers are recombined with :func:`repro.sim.stats.merge_run_maps`.
"""

from repro.sim.stats import RegionStats, RunStats, merge_run_maps
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.plan import ExperimentPlan, ExperimentSweep, RunRequest, execute_plan
from repro.sim.vliw import CycleAccurateEngine, CycleTrace

__all__ = [
    "RegionStats",
    "RunStats",
    "merge_run_maps",
    "ExecutionEngine",
    "execute_program",
    "ExperimentPlan",
    "ExperimentSweep",
    "RunRequest",
    "execute_plan",
    "CycleAccurateEngine",
    "CycleTrace",
]
