"""Timing simulation of compiled kernel programs.

Two engines are provided:

* :mod:`repro.sim.fast` — the production executor.  It walks the loop nest
  of a compiled program, charges each segment iteration its scheduled
  initiation interval, evaluates the address of every memory operation and
  adds the run-time stall cycles (cache misses, bank conflicts, non-unit
  stride vector accesses, coherency write-backs) exactly as the paper's
  stall-on-violation machine model prescribes.
* :mod:`repro.sim.vliw` — a cycle-stepping engine for a single segment
  instance, used to cross-validate the fast executor and to animate small
  kernels cycle by cycle (e.g. the Figure-4 schedule).

Both produce :class:`repro.sim.stats.RunStats`, the per-region cycle and
operation accounting that the experiment layer turns into the paper's
figures and tables.
"""

from repro.sim.stats import RegionStats, RunStats
from repro.sim.fast import ExecutionEngine, execute_program
from repro.sim.vliw import CycleAccurateEngine, CycleTrace

__all__ = [
    "RegionStats",
    "RunStats",
    "ExecutionEngine",
    "execute_program",
    "CycleAccurateEngine",
    "CycleTrace",
]
