"""Execution statistics: per-region cycles, operations and micro-operations.

The paper's evaluation splits every benchmark into regions (R0 = the scalar
part, R1..R3 = the vectorised kernels of Table 1) and reports, per region
and for the whole application: cycles, speed-up, operations per cycle (OPC)
and micro-operations per cycle (µOPC).  :class:`RunStats` is the container
all of those are derived from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence

__all__ = ["STATS_SCHEMA_VERSION", "RegionStats", "RunStats", "merge_run_maps"]

#: Version of the :class:`RunStats` serialisation schema *and* of the engine
#: semantics it captures.  The persistent result store
#: (:mod:`repro.store`) namespaces every entry under this number, so bump it
#: whenever a change alters what a simulation reports for the same inputs —
#: new/renamed region counters, a fixed timing bug, a changed stall model.
#: Old store entries are then simply never consulted again (invalidation by
#: namespace, not by deletion).
#: v2: the benchmark registry name joined the run fingerprint and the
#: µSIMD dot-product emitter gained its missing accumulate dependence —
#: both change keys/timings, so v1 entries are retired wholesale.
#: v3: the scheduler strategy joined the run fingerprint (results compiled
#: under different strategies differ in cycles); pre-strategy v2 entries —
#: keyed without a strategy axis — are retired wholesale rather than being
#: silently served for baseline requests only.
STATS_SCHEMA_VERSION = 3


@dataclass
class RegionStats:
    """Accumulated statistics of one region of one program run."""

    name: str
    vectorizable: bool = False
    cycles: int = 0
    operations: int = 0
    micro_ops: int = 0
    memory_stall_cycles: int = 0
    memory_accesses: int = 0
    segment_executions: int = 0

    def add_segment(self, cycles: int, operations: int, micro_ops: int,
                    stall_cycles: int, memory_accesses: int) -> None:
        """Fold one segment execution into the region totals."""
        self.cycles += cycles
        self.operations += operations
        self.micro_ops += micro_ops
        self.memory_stall_cycles += stall_cycles
        self.memory_accesses += memory_accesses
        self.segment_executions += 1

    @property
    def opc(self) -> float:
        """Operations per cycle in this region."""
        return self.operations / self.cycles if self.cycles else 0.0

    @property
    def uopc(self) -> float:
        """Micro-operations per cycle in this region."""
        return self.micro_ops / self.cycles if self.cycles else 0.0

    def merged_with(self, other: "RegionStats") -> "RegionStats":
        """Return a new RegionStats combining two runs of the same region."""
        if other.name != self.name:
            raise ValueError("cannot merge statistics of different regions")
        merged = RegionStats(name=self.name,
                             vectorizable=self.vectorizable or other.vectorizable)
        for source in (self, other):
            merged.cycles += source.cycles
            merged.operations += source.operations
            merged.micro_ops += source.micro_ops
            merged.memory_stall_cycles += source.memory_stall_cycles
            merged.memory_accesses += source.memory_accesses
            merged.segment_executions += source.segment_executions
        return merged


@dataclass
class RunStats:
    """Statistics of one complete program run on one machine configuration."""

    program_name: str
    config_name: str
    flavor: str
    regions: Dict[str, RegionStats] = field(default_factory=dict)

    def region(self, name: str, vectorizable: bool = False) -> RegionStats:
        """Get (or create) the statistics record for one region."""
        if name not in self.regions:
            self.regions[name] = RegionStats(name=name, vectorizable=vectorizable)
        return self.regions[name]

    # -- totals ---------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.regions.values())

    @property
    def total_operations(self) -> int:
        return sum(r.operations for r in self.regions.values())

    @property
    def total_micro_ops(self) -> int:
        return sum(r.micro_ops for r in self.regions.values())

    @property
    def total_stall_cycles(self) -> int:
        return sum(r.memory_stall_cycles for r in self.regions.values())

    @property
    def opc(self) -> float:
        """Whole-application operations per cycle."""
        return self.total_operations / self.total_cycles if self.total_cycles else 0.0

    @property
    def uopc(self) -> float:
        """Whole-application micro-operations per cycle."""
        return self.total_micro_ops / self.total_cycles if self.total_cycles else 0.0

    # -- scalar / vector split ------------------------------------------------

    def _select(self, vectorizable: bool) -> Iterable[RegionStats]:
        return (r for r in self.regions.values() if r.vectorizable is vectorizable)

    @property
    def vector_region_cycles(self) -> int:
        """Cycles spent in the vectorisable regions (R1..R3)."""
        return sum(r.cycles for r in self._select(True))

    @property
    def scalar_region_cycles(self) -> int:
        """Cycles spent in the scalar region (R0)."""
        return sum(r.cycles for r in self._select(False))

    @property
    def vector_region_operations(self) -> int:
        return sum(r.operations for r in self._select(True))

    @property
    def scalar_region_operations(self) -> int:
        return sum(r.operations for r in self._select(False))

    @property
    def vector_region_micro_ops(self) -> int:
        return sum(r.micro_ops for r in self._select(True))

    @property
    def scalar_region_micro_ops(self) -> int:
        return sum(r.micro_ops for r in self._select(False))

    @property
    def vectorization_fraction(self) -> float:
        """Fraction of execution time spent in the vectorisable regions."""
        total = self.total_cycles
        return self.vector_region_cycles / total if total else 0.0

    def scalar_opc(self) -> float:
        """Operations per cycle restricted to the scalar region."""
        cycles = self.scalar_region_cycles
        return self.scalar_region_operations / cycles if cycles else 0.0

    def vector_opc(self) -> float:
        """Operations per cycle restricted to the vector regions."""
        cycles = self.vector_region_cycles
        return self.vector_region_operations / cycles if cycles else 0.0

    def scalar_uopc(self) -> float:
        """Micro-operations per cycle restricted to the scalar region."""
        cycles = self.scalar_region_cycles
        return self.scalar_region_micro_ops / cycles if cycles else 0.0

    def vector_uopc(self) -> float:
        """Micro-operations per cycle restricted to the vector regions."""
        cycles = self.vector_region_cycles
        return self.vector_region_micro_ops / cycles if cycles else 0.0

    # -- comparisons ----------------------------------------------------------

    def speedup_over(self, baseline: "RunStats") -> float:
        """Whole-application speed-up of this run over ``baseline``."""
        if self.total_cycles == 0:
            return 0.0
        return baseline.total_cycles / self.total_cycles

    def vector_region_speedup_over(self, baseline: "RunStats") -> float:
        """Speed-up restricted to the vector regions."""
        cycles = self.vector_region_cycles
        if cycles == 0:
            return 0.0
        return baseline.vector_region_cycles / cycles

    def scalar_region_speedup_over(self, baseline: "RunStats") -> float:
        """Speed-up restricted to the scalar regions."""
        cycles = self.scalar_region_cycles
        if cycles == 0:
            return 0.0
        return baseline.scalar_region_cycles / cycles

    def normalized_operations(self, baseline: "RunStats") -> float:
        """Dynamic operation count normalised to ``baseline`` (Figure 7)."""
        if baseline.total_operations == 0:
            return 0.0
        return self.total_operations / baseline.total_operations

    def region_operation_breakdown(self) -> Dict[str, int]:
        """Dynamic operation count per region name."""
        return {name: stats.operations for name, stats in self.regions.items()}

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by the report writers."""
        return {
            "program": self.program_name,
            "config": self.config_name,
            "flavor": self.flavor,
            "cycles": self.total_cycles,
            "operations": self.total_operations,
            "micro_ops": self.total_micro_ops,
            "stall_cycles": self.total_stall_cycles,
            "opc": self.opc,
            "uopc": self.uopc,
            "vector_cycles": self.vector_region_cycles,
            "scalar_cycles": self.scalar_region_cycles,
            "vectorization": self.vectorization_fraction,
        }

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Complete, lossless plain-data form (regions with all counters)."""
        return {
            "program": self.program_name,
            "config": self.config_name,
            "flavor": self.flavor,
            "regions": {
                name: {
                    "vectorizable": region.vectorizable,
                    "cycles": region.cycles,
                    "operations": region.operations,
                    "micro_ops": region.micro_ops,
                    "memory_stall_cycles": region.memory_stall_cycles,
                    "memory_accesses": region.memory_accesses,
                    "segment_executions": region.segment_executions,
                }
                for name, region in sorted(self.regions.items())
            },
        }

    def canonical_json(self) -> str:
        """Deterministic byte-for-byte serialisation of this run.

        Two runs compare equal under this encoding iff every counter of
        every region matches — the equality the parallel executor's
        determinism guarantees are stated (and tested) in.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunStats":
        """Inverse of :meth:`to_dict`."""
        run = cls(program_name=str(data["program"]),
                  config_name=str(data["config"]),
                  flavor=str(data["flavor"]))
        for name, fields in dict(data["regions"]).items():
            region = run.region(name, vectorizable=bool(fields["vectorizable"]))
            region.cycles = int(fields["cycles"])
            region.operations = int(fields["operations"])
            region.micro_ops = int(fields["micro_ops"])
            region.memory_stall_cycles = int(fields["memory_stall_cycles"])
            region.memory_accesses = int(fields["memory_accesses"])
            region.segment_executions = int(fields["segment_executions"])
        return run


def merge_run_maps(shards: Iterable[Mapping[Hashable, "RunStats"]],
                   order: Optional[Sequence[Hashable]] = None
                   ) -> Dict[Hashable, "RunStats"]:
    """Deterministically merge result shards from (possibly parallel) workers.

    ``shards`` are mappings from a run key — e.g. a
    :class:`~repro.sim.plan.RunRequest` — to its :class:`RunStats`.  The
    merged dictionary's iteration order is fixed by ``order`` when given
    (keys absent from ``order`` follow, sorted by ``repr``); otherwise keys
    are sorted by ``repr``.  The merge is therefore independent of shard
    arrival order, which is what makes parallel sweeps byte-identical to
    serial ones.

    Duplicate keys are tolerated only when both runs serialise identically
    (idempotent re-execution); a conflicting duplicate raises ``ValueError``
    because it means two workers disagreed on a deterministic simulation.
    """
    merged: Dict[Hashable, RunStats] = {}
    for shard in shards:
        for key, stats in shard.items():
            existing = merged.get(key)
            if existing is not None:
                if existing.canonical_json() != stats.canonical_json():
                    raise ValueError(
                        f"conflicting results for run {key!r}: deterministic "
                        f"simulation produced two different statistics")
                continue
            merged[key] = stats
    if order is not None:
        ordering = {key: index for index, key in enumerate(order)}
        tail = len(ordering)
        keys = sorted(merged,
                      key=lambda k: (ordering.get(k, tail), repr(k)))
    else:
        keys = sorted(merged, key=repr)
    return {key: merged[key] for key in keys}
