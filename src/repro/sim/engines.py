"""Execution-tier selection.

Three engines can execute a compiled program (see ``docs/performance.md``):

``"trace"``
    :class:`repro.sim.trace.TraceExecutionEngine` — the default.  Compiles
    the run to batched address streams and replays them through the
    vectorized memory hierarchy.  Statistics are identical to the
    interpreter's.
``"interpreter"``
    :class:`repro.sim.fast.ExecutionEngine` — the reference oracle.  Walks
    the loop nest in Python, one dynamic memory access at a time.

(The third tier, :class:`repro.sim.vliw.CycleAccurateEngine`, steps single
segments cycle by cycle and is driven directly by tests and examples, not
through this registry.)

How selection flows
-------------------

Every batched entry point (``execute_program``, ``machine.run``,
``run_benchmarks``, ``execute_requests``, ``SuiteEvaluation``, the
``--engine`` flag of every CLI command) accepts an ``engine=`` escape
hatch; ``None`` means :data:`DEFAULT_ENGINE`.  The string is threaded down
unchanged — worker pools receive it in their initialiser — and resolved
here, at the last moment, into an engine instance per compiled program.

Invariants the selection relies on:

* the tiers produce **identical statistics** for every program, machine
  configuration and memory mode — enforced field-for-field by
  ``tests/test_trace_engine.py`` (random programs via Hypothesis, plus
  every benchmark of the extended registry suite);
* because of that, the engine name is deliberately **not** part of the
  persistent result-store key (:mod:`repro.store.result_store`) — a run
  simulated by either tier answers for both.  Anything that broke the
  equivalence would be a bug, and the store's schema-version namespace is
  the lever that retires stored results when statistics semantics change.
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.scheduler import CompiledProgram
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.fast import ExecutionEngine
from repro.sim.trace import TraceExecutionEngine

__all__ = ["DEFAULT_ENGINE", "ENGINE_NAMES", "make_engine"]

DEFAULT_ENGINE = "trace"
ENGINE_NAMES = ("trace", "interpreter")


def make_engine(engine: Optional[str], compiled: CompiledProgram,
                hierarchy: MemoryHierarchy):
    """Instantiate the execution engine named ``engine`` (None = default)."""
    name = engine or DEFAULT_ENGINE
    if name == "trace":
        return TraceExecutionEngine(compiled, hierarchy)
    if name == "interpreter":
        return ExecutionEngine(compiled, hierarchy)
    raise ValueError(
        f"unknown execution engine {engine!r}; choose one of {ENGINE_NAMES}")
