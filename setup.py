"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in environments without the ``wheel``
package (offline editable installs fall back to the legacy code path).
"""

from setuptools import setup

setup()
