"""Wall-clock benchmark of the paper sweep; writes ``BENCH_sweep.json``.

Usage::

    PYTHONPATH=src python benchmarks/sweep_timing.py --output BENCH_sweep.json
    PYTHONPATH=src python benchmarks/sweep_timing.py --tiny --jobs 8

Each experiment is timed twice — serially and with ``--jobs`` worker
processes — against a fresh :class:`~repro.experiments.evaluation.SuiteEvaluation`,
and the process-wide compile cache is cleared before every timed region, so
each measurement includes its own compilation work and nothing leaks
between lanes.  The JSON also records a *calibration* time (a fixed pure
Python + NumPy workload) so that :mod:`benchmarks.check_regression` can
compare runs from machines of different speeds: regressions are judged on
calibration-normalised times, not raw seconds.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np


def _fresh_evaluation(tiny: bool, jobs: int, engine: str,
                      strategy: str = "baseline"):
    from repro.experiments.evaluation import SuiteEvaluation
    from repro.workloads.suite import SuiteParameters

    parameters = SuiteParameters.tiny() if tiny else SuiteParameters.default()
    # store=None: the timings must measure real simulation, never be
    # short-circuited by a warm REPRO_STORE inherited from the environment
    return SuiteEvaluation(parameters=parameters, jobs=jobs, engine=engine,
                           store=None, strategy=strategy)


def _sweep(evaluation, perfect: bool) -> None:
    from repro.sim.plan import ExperimentSweep

    evaluation.ensure(ExperimentSweep(memory_modes=(perfect,)))


def _render(evaluation) -> None:
    from repro.experiments.report import full_report

    full_report(evaluation)


def calibrate(repeats: int = 3) -> float:
    """Seconds a fixed reference workload takes on this machine (best of N).

    Mixes NumPy throughput and Python interpreter dispatch in roughly the
    proportions of the simulator's hot paths.  Best-of-``repeats``, like
    the experiment timings: a single noisy sample here would scale every
    normalised ratio the CI regression gate judges.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        total = 0
        for _ in range(4):
            array = np.arange(2_000_000, dtype=np.int64)
            total += int(((array * 3) // 7).sum())
            row = [0] * 64
            for value in range(200_000):
                row[value % 64] = value
                total += row[(value * 7) % 64]
        assert total != 0
        best = min(best, time.perf_counter() - start)
    return best


def time_experiments(tiny: bool, jobs: int, engine: str,
                     strategy: str = "baseline"):
    """Measure every experiment serially and with ``jobs`` workers."""
    experiments = {}

    from repro.compiler.cache import GLOBAL_COMPILE_CACHE

    def measure(name, prepare, run, repeats=2):
        # best-of-N: wall-clock gates on shared CI runners are only as good
        # as their noise floor
        timings = {}
        for key, job_count in (("serial_s", 1), ("jobs_s", jobs)):
            best = None
            for _ in range(repeats):
                evaluation = _fresh_evaluation(tiny, job_count, engine,
                                               strategy)
                prepare(evaluation)
                GLOBAL_COMPILE_CACHE.clear()
                start = time.perf_counter()
                run(evaluation)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            timings[key] = round(best, 4)
        experiments[name] = timings

    measure("sweep_realistic", lambda ev: None, lambda ev: _sweep(ev, False))
    measure("sweep_perfect", lambda ev: None, lambda ev: _sweep(ev, True))
    # rendering alone: the sweep is prefetched outside the timed region
    measure("report_render", lambda ev: ev.prefetch(), _render)
    return experiments


def time_phases(tiny: bool, engine: str, repeats: int = 2):
    """Serial per-phase breakdown of one full evaluation.

    Splits a complete report run into its three phases — scheduling every
    (program, configuration) pair into the compile cache, simulating the
    full sweep against that warm cache, and rendering the report from the
    prefetched results — so a timing regression points at the layer that
    caused it instead of a single opaque total.  Best-of-``repeats`` per
    phase, like the experiment lanes.
    """
    from repro.compiler.cache import GLOBAL_COMPILE_CACHE
    from repro.core.architecture import VectorMicroSimdVliwMachine
    from repro.machine.config import get_config

    best = {}

    def record(key, elapsed):
        previous = best.get(key)
        best[key] = elapsed if previous is None else min(previous, elapsed)

    for _ in range(repeats):
        evaluation = _fresh_evaluation(tiny, 1, engine)
        GLOBAL_COMPILE_CACHE.clear()
        specs = {name: evaluation.spec(name)
                 for name in evaluation.benchmark_names}

        start = time.perf_counter()
        for config_name in evaluation.config_names:
            config = get_config(config_name)
            machine = VectorMicroSimdVliwMachine(config)
            for spec in specs.values():
                machine.compile(spec.program_for(config))
        record("compile_s", time.perf_counter() - start)

        # the compile cache is warm now, so this times simulation proper
        start = time.perf_counter()
        evaluation.prefetch()
        record("simulate_s", time.perf_counter() - start)

        start = time.perf_counter()
        _render(evaluation)
        record("report_s", time.perf_counter() - start)
    return {key: round(value, 4) for key, value in best.items()}


def schedule_quality(tiny: bool):
    """Modeled-cycle quality of every scheduler strategy (no simulation).

    For both reference machine shapes, compiles the extended ten-benchmark
    suite under every registered strategy and records the static cycle
    model (initiation interval x dynamic trip count, summed) plus the
    geometric-mean speedup over baseline.  Deterministic and
    machine-independent, so :mod:`benchmarks.check_regression` gates it
    exactly: a schedule-quality regression fails CI like a timing one.
    """
    import math

    from repro.compiler.cache import compile_cached
    from repro.compiler.strategies import strategy_names
    from repro.machine.config import get_config
    from repro.workloads.suite import (EXTENDED_BENCHMARK_NAMES,
                                       SuiteParameters, build_suite)

    parameters = SuiteParameters.tiny() if tiny else SuiteParameters.default()
    suite = build_suite(parameters, names=EXTENDED_BENCHMARK_NAMES)
    quality = {}
    for config_name in ("vliw-2w", "vector2-2w"):
        config = get_config(config_name)
        per_strategy = {}
        for strategy in strategy_names():
            cycles = {}
            for name in EXTENDED_BENCHMARK_NAMES:
                compiled = compile_cached(suite[name].program_for(config),
                                          config, strategy=strategy)
                total = 0
                for segment, loops in compiled.program.walk_segments():
                    trips = 1
                    for loop in loops:
                        trips *= loop.trip_count
                    total += (compiled.schedules[id(segment)]
                              .initiation_interval * trips)
                cycles[name] = total
            per_strategy[strategy] = cycles
        base = per_strategy["baseline"]
        quality[config_name] = {}
        for strategy, cycles in per_strategy.items():
            log_sum = sum(math.log(base[name] / cycles[name])
                          for name in EXTENDED_BENCHMARK_NAMES)
            quality[config_name][strategy] = {
                "modeled_cycles": sum(cycles.values()),
                "geomean_speedup": round(
                    math.exp(log_sum / len(EXTENDED_BENCHMARK_NAMES)), 4),
            }
    return quality


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_sweep.json",
                        help="where to write the timing JSON")
    parser.add_argument("--tiny", action="store_true",
                        help="use the test-sized inputs instead of the defaults")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count for the parallel measurements "
                             "(default: REPRO_JOBS / CPU count)")
    parser.add_argument("--engine", default="trace",
                        choices=("trace", "interpreter"),
                        help="execution tier to benchmark")
    parser.add_argument("--verify", action="store_true",
                        help="run the static analyzer on every compilation "
                             "(sets REPRO_VERIFY; measures the verify=True "
                             "overhead of the sweep)")
    parser.add_argument("--strategy", default="baseline", metavar="NAME",
                        help="scheduler strategy the timed sweeps compile "
                             "under (see repro.compiler.strategies; default: "
                             "baseline).  The schedule_quality section "
                             "always covers every registered strategy.")
    args = parser.parse_args(argv)

    if args.verify:
        os.environ["REPRO_VERIFY"] = "1"

    from repro.core.runner import default_jobs
    from repro.experiments.report import resolve_strategies

    strategy = resolve_strategies([args.strategy])[0]
    jobs = args.jobs if args.jobs is not None else default_jobs()
    calibration = calibrate()
    experiments = time_experiments(args.tiny, jobs, args.engine, strategy)
    phases = time_phases(args.tiny, args.engine)
    payload = {
        "schema": 2,
        "engine": args.engine,
        "verify": bool(args.verify),
        "parameters": "tiny" if args.tiny else "default",
        "jobs": jobs,
        "strategy": strategy,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_s": round(calibration, 4),
        "experiments": experiments,
        "phases": phases,
        "schedule_quality": schedule_quality(args.tiny),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\n[written to {args.output}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
