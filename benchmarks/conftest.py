"""Shared fixtures for the benchmark harness.

The benchmarks use the reduced (``tiny``) inputs so the full harness runs in
a few minutes; EXPERIMENTS.md records the default-size results produced by
``python -m repro.experiments.report``.  Heavy whole-suite benchmarks are
executed with a single round (``benchmark.pedantic``) because one evaluation
sweep is already seconds long.
"""

import pytest

from repro.experiments.evaluation import SuiteEvaluation
from repro.workloads.suite import SuiteParameters


@pytest.fixture(scope="session")
def bench_parameters() -> SuiteParameters:
    return SuiteParameters.tiny()


@pytest.fixture(scope="session")
def bench_evaluation(bench_parameters) -> SuiteEvaluation:
    """Shared evaluation cache; each benchmark touches the slices it needs."""
    return SuiteEvaluation(parameters=bench_parameters)
