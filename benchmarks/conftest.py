"""Shared fixtures for the benchmark harness.

The benchmarks use the reduced (``tiny``) inputs so the full harness runs in
a few minutes; ``python -m repro report`` regenerates the default-size
results on demand (no transcript is checked in).  Heavy whole-suite
benchmarks are
executed with a single round (``benchmark.pedantic``) because one evaluation
sweep is already seconds long.

The shared :class:`SuiteEvaluation` runs through the experiment engine: the
``REPRO_JOBS`` environment variable (default: the CPU count) sets how many
worker processes each batched sweep may use.  Serial and parallel sweeps
produce byte-identical statistics, so the benchmark numbers are comparable
across job counts.

Everything in this directory is also marked ``slow`` so that a plain
``pytest -m "not slow"`` (the default CI lane) skips the benchmark suite.
"""

import pathlib

import pytest

from repro.core.runner import default_jobs
from repro.experiments.evaluation import SuiteEvaluation
from repro.workloads.suite import SuiteParameters

_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    """Mark every benchmark in this directory as ``slow``."""
    for item in items:
        try:
            in_bench_dir = _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents
        except OSError:  # pragma: no cover - defensive
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def bench_parameters() -> SuiteParameters:
    return SuiteParameters.tiny()


@pytest.fixture(scope="session")
def bench_evaluation(bench_parameters) -> SuiteEvaluation:
    """Shared evaluation cache; each benchmark touches the slices it needs."""
    return SuiteEvaluation(parameters=bench_parameters, jobs=default_jobs())
