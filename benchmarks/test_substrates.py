"""Micro-benchmarks of the substrates plus ablation sweeps.

These are not figures of the paper; they measure the cost of the simulator's
own building blocks (useful when extending the model) and run two ablations
beyond the paper's grid: the vector-cache latency and the number of vector
lanes.  (An earlier ``DESIGN.md`` file described these; its content now
lives in ``docs/architecture.md``.)
"""

import numpy as np
import pytest

from repro.compiler.ir import ISAFlavor
from repro.compiler.scheduler import schedule_segment
from repro.core.architecture import VectorMicroSimdVliwMachine
from repro.isa import packed
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.cache import SetAssociativeCache
from repro.workloads.mpeg2.motion import build_sad_kernel_program
from repro.workloads.jpeg.programs import JpegParameters, build_jpeg_enc_program


def test_packed_psadbw_throughput(benchmark):
    """Functional emulation cost of the packed SAD primitive."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, (1024, 8), dtype=np.uint8)
    b = rng.integers(0, 256, (1024, 8), dtype=np.uint8)
    result = benchmark(packed.psadbw, a, b)
    assert result.shape == (1024,)


def test_cache_access_throughput(benchmark):
    """Tag-store access rate of the set-associative cache model."""
    cache = SetAssociativeCache(16 * 1024, 4, 32)
    addresses = [(i * 24) % 65536 for i in range(4096)]

    def run():
        for address in addresses:
            cache.access(address)
        return cache.stats.accesses

    assert benchmark(run) > 0


def test_vector_access_throughput(benchmark):
    """Vector-path access rate of the full hierarchy."""
    hierarchy = MemoryHierarchy(get_config("vector2-2w").memory, l2_port_words=4)
    hierarchy.preload(0, 1 << 16)

    def run():
        total = 0
        for i in range(512):
            total += hierarchy.vector_access((i * 128) % (1 << 16), 8, 16).latency
        return total

    assert benchmark(run) > 0


def test_scheduler_throughput(benchmark):
    """List-scheduling rate on the Figure-4 kernel."""
    program = build_sad_kernel_program(ISAFlavor.VECTOR)
    segment = program.segments()[0]
    config = get_config("vector2-2w")
    schedule = benchmark(schedule_segment, segment, config)
    assert schedule.operation_count == 16


def test_whole_benchmark_simulation(benchmark):
    """End-to-end simulation cost of one benchmark on one configuration."""
    params = JpegParameters(width=32, height=32)
    program = build_jpeg_enc_program(ISAFlavor.VECTOR, params)
    machine = VectorMicroSimdVliwMachine.from_name("vector2-4w")

    def run():
        return machine.run(program).total_cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles > 0


@pytest.mark.parametrize("l2_latency", [3, 5, 9])
def test_ablation_vector_cache_latency(benchmark, l2_latency):
    """Ablation: sensitivity of the vector regions to the vector-cache latency."""
    params = JpegParameters(width=32, height=32)
    program = build_jpeg_enc_program(ISAFlavor.VECTOR, params)
    model = LatencyModel().with_overrides(vector_load=l2_latency, vector_store=l2_latency)
    machine = VectorMicroSimdVliwMachine(get_config("vector2-2w"), latency_model=model)

    def run():
        return machine.run(program).vector_region_cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles > 0


@pytest.mark.parametrize("config_name", ["vector1-2w", "vector2-2w", "vector2-4w"])
def test_ablation_vector_units(benchmark, config_name):
    """Ablation: doubling the vector units (Vector1 vs Vector2, 2w vs 4w)."""
    params = JpegParameters(width=32, height=32)
    program = build_jpeg_enc_program(ISAFlavor.VECTOR, params)
    machine = VectorMicroSimdVliwMachine.from_name(config_name)

    def run():
        return machine.run(program).vector_region_cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles > 0
