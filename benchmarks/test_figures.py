"""Benchmarks that regenerate the paper's figures (1, 3, 4, 5, 6, 7)."""


from repro.experiments import figure1, figure3, figure4, figure5, figure6, figure7


def test_figure1_region_scalability(benchmark, bench_evaluation):
    """Figure 1: scalar vs vector region scalability on the µSIMD machines."""
    def run():
        return figure1.average_scalability(bench_evaluation)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    assert summary["usimd-8w"]["vector"] > summary["usimd-8w"]["scalar"]


def test_figure3_latency_descriptors(benchmark):
    """Figure 3: latency descriptors across vector lengths (analytic)."""
    rows = benchmark(figure3.generate)
    assert any(r["operation"] == "vector load" for r in rows)


def test_figure4_motion_estimation_schedule(benchmark):
    """Figure 4: schedule the dist1 SAD kernel on the 2-issue Vector2 machine."""
    data = benchmark(figure4.generate)
    assert data["vector_operations"] == 16


def test_figure5a_vector_regions_perfect_memory(benchmark, bench_evaluation):
    """Figure 5a: vector-region speed-ups with perfect memory."""
    def run():
        return figure5.average_speedups(bench_evaluation, perfect_memory=True)

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    assert averages["vector2-2w"] > averages["usimd-8w"]


def test_figure5b_vector_regions_realistic_memory(benchmark, bench_evaluation):
    """Figure 5b: vector-region speed-ups with the full memory hierarchy."""
    def run():
        return figure5.average_speedups(bench_evaluation, perfect_memory=False)

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    assert averages["vector2-2w"] > averages["usimd-2w"]


def test_figure6_application_speedup(benchmark, bench_evaluation):
    """Figure 6: whole-application speed-ups for the ten configurations."""
    def run():
        return figure6.average_speedups(bench_evaluation)

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    assert averages["vector2-4w"] > averages["usimd-4w"]


def test_figure7_operation_counts(benchmark, bench_evaluation):
    """Figure 7: normalised dynamic operation counts per region."""
    def run():
        return figure7.generate(bench_evaluation)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(rows) == len(bench_evaluation.benchmark_names) * len(figure7.FAMILY_CONFIGS)
