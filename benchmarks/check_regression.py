"""Gate sweep wall-clock against the committed baseline.

Usage::

    python benchmarks/check_regression.py BENCH_sweep.json benchmarks/BENCH_baseline.json

Compares every experiment of the current ``BENCH_sweep.json`` (written by
:mod:`benchmarks.sweep_timing`) against the committed baseline and exits
non-zero when any *calibration-normalised* time regressed by more than the
threshold (25 % by default).  Normalising by the calibration workload makes
the check meaningful across machines of different speeds; an absolute floor
ignores experiments too short for the ratio to be stable.

The gate also fails on *jobs-vs-serial inversions* within the current run:
an experiment whose parallel lane is meaningfully slower than its own
serial lane means worker dispatch regressed (see
``repro.core.runner.PARALLEL_MIN_PENDING``), whatever the baseline says.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Experiments faster than this (in current-run seconds) are too noisy to
#: gate on a ratio; they only fail if they also exceed the baseline by the
#: same absolute amount.
NOISE_FLOOR_S = 0.25

#: A ``jobs_s`` lane may exceed its own ``serial_s`` lane by this fraction
#: before it counts as an inversion — the pool is supposed to be a speed-up
#: (or, below the runner's parallel cutover, a no-op), never a slowdown.
INVERSION_TOLERANCE = 0.15


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def compare(current: dict, baseline: dict, threshold: float):
    """Yield (name, key, ratio, regressed) for every comparable timing.

    The ``jobs_s`` lane is only compared when both files were measured
    with the same worker count — otherwise the ratio would measure
    parallel speedup (or pool overhead), not a code regression.
    """
    current_cal = float(current["calibration_s"])
    baseline_cal = float(baseline["calibration_s"])
    same_jobs = current.get("jobs") == baseline.get("jobs")
    for name, base_times in sorted(baseline["experiments"].items()):
        cur_times = current["experiments"].get(name)
        if cur_times is None:
            continue
        keys = ("serial_s", "jobs_s") if same_jobs else ("serial_s",)
        for key in keys:
            if key not in base_times or key not in cur_times:
                continue
            cur = float(cur_times[key])
            base = float(base_times[key])
            ratio = (cur / current_cal) / (base / baseline_cal) if base else float("inf")
            regressed = (ratio > 1.0 + threshold
                         and cur > base * current_cal / baseline_cal + NOISE_FLOOR_S)
            yield name, key, ratio, regressed


def compare_schedule_quality(current: dict, baseline: dict):
    """Yield (config, strategy, current_cycles, base_cycles, regressed).

    Modeled cycles are a deterministic property of the compiler, not the
    machine, so unlike the wall-clock lanes there is no threshold or noise
    floor: any increase is a real schedule-quality regression.  Strategies
    present only on one side are skipped (a newly registered strategy has
    no baseline yet; update the baseline to start gating it).
    """
    base_quality = baseline.get("schedule_quality") or {}
    cur_quality = current.get("schedule_quality") or {}
    for config, base_strategies in sorted(base_quality.items()):
        cur_strategies = cur_quality.get(config) or {}
        for strategy, base_entry in sorted(base_strategies.items()):
            cur_entry = cur_strategies.get(strategy)
            if cur_entry is None:
                continue
            cur_cycles = int(cur_entry["modeled_cycles"])
            base_cycles = int(base_entry["modeled_cycles"])
            yield config, strategy, cur_cycles, base_cycles, cur_cycles > base_cycles


def find_inversions(current: dict, tolerance: float = INVERSION_TOLERANCE):
    """Yield (name, serial_s, jobs_s) where the worker pool lost to serial.

    An inversion means parallel dispatch made the sweep *slower* — the
    regression the runner's parallel cutover exists to prevent.  Only
    meaningful when the run actually requested workers (``jobs > 1``), and
    only flagged when the gap clears both the relative tolerance and the
    absolute noise floor.
    """
    if current.get("jobs", 1) <= 1:
        return
    for name, times in sorted(current["experiments"].items()):
        if "serial_s" not in times or "jobs_s" not in times:
            continue
        serial = float(times["serial_s"])
        parallel = float(times["jobs_s"])
        if (parallel > serial * (1.0 + tolerance)
                and parallel - serial > NOISE_FLOOR_S):
            yield name, serial, parallel


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_sweep.json of this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed normalised slowdown (default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)
    for field in ("parameters", "engine", "strategy"):
        # pre-strategy files carry no "strategy" key; they were baseline runs
        if (current.get(field, "baseline") if field == "strategy"
                else current.get(field)) \
                != (baseline.get(field, "baseline") if field == "strategy"
                    else baseline.get(field)):
            print(f"error: current run used {field}={current.get(field)!r} but "
                  f"the baseline was recorded with {baseline.get(field)!r}; "
                  f"the comparison would be meaningless", file=sys.stderr)
            return 2
    if current.get("jobs") != baseline.get("jobs"):
        print(f"note: worker counts differ (current {current.get('jobs')}, "
              f"baseline {baseline.get('jobs')}); only the serial lane is "
              f"compared", file=sys.stderr)

    missing = sorted(set(baseline["experiments"]) - set(current["experiments"]))
    if missing:
        print(f"error: baseline experiment(s) {missing} absent from the "
              f"current run; the gate would silently stop covering them — "
              f"update the baseline and this check together", file=sys.stderr)
        return 2

    failures = 0
    compared = 0
    for name, key, ratio, regressed in compare(current, baseline, args.threshold):
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{name:20s} {key:9s} normalised x{ratio:5.2f}  {verdict}")
        failures += regressed
        compared += 1
    if not compared:
        print("error: no timings were comparable between current run and "
              "baseline; the gate checked nothing", file=sys.stderr)
        return 2
    for config, strategy, cur_cycles, base_cycles, regressed in \
            compare_schedule_quality(current, baseline):
        if regressed:
            verdict = "REGRESSED"
        elif cur_cycles < base_cycles:
            verdict = "improved (refresh the baseline to lock it in)"
        else:
            verdict = "ok"
        print(f"{config:>12s}/{strategy:9s} modeled cycles "
              f"{cur_cycles} vs {base_cycles}  {verdict}")
        failures += regressed
    for name, serial, parallel in find_inversions(current):
        print(f"{name:20s} jobs-vs-serial INVERTED: jobs_s={parallel:.3f} "
              f"> serial_s={serial:.3f} (+{parallel / serial - 1:.0%})")
        failures += 1
    if failures:
        print(f"\n{failures} check(s) regressed vs {args.baseline} "
              f"(timing threshold {args.threshold:.0%}; schedule quality "
              f"is exact)", file=sys.stderr)
        return 1
    print("\nall sweep timings and schedule-quality figures within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
