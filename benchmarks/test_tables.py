"""Benchmarks that regenerate the paper's tables (Tables 1, 2 and 3)."""


from repro.experiments import table1, table2, table3


def test_table2_processor_configurations(benchmark):
    """Table 2: render the ten machine configurations (static, fast)."""
    rows = benchmark(table2.generate)
    assert len(rows) == 10


def test_table1_vector_regions(benchmark, bench_evaluation):
    """Table 1: vectorisation percentage of every benchmark on usimd-2w."""
    def run():
        return table1.generate(bench_evaluation)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = {row["benchmark"]: row["measured_percent"] for row in rows}
    assert measured["mpeg2_enc"] == max(measured.values())
    assert measured["gsm_dec"] == min(measured.values())


def test_table3_opc_uopc_speedup(benchmark, bench_evaluation):
    """Table 3: per-region OPC / µOPC / speed-up averaged over the suite."""
    def run():
        return table3.generate(bench_evaluation)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_config = {row["config"]: row for row in rows}
    assert by_config["vector2-2w"]["vector_uopc"] > by_config["usimd-2w"]["vector_uopc"]
    assert by_config["usimd-8w"]["scalar_speedup"] < 2.0
