#!/usr/bin/env python
"""JPEG pipeline example: functional kernels plus the architectural comparison.

Part 1 runs the *functional* JPEG encoder kernels (colour conversion, DCT,
quantisation, entropy coding) on a synthetic image and verifies the µSIMD /
Vector-µSIMD implementations agree with the scalar reference while the
bit-stream round-trips exactly.

Part 2 runs the *timing* model of the full jpeg_enc benchmark on several of
the paper's machine configurations and prints the speed-ups and the share of
time spent in the vector regions (the Amdahl effect of §5.2).

Run with::

    python examples/jpeg_pipeline.py
"""

import numpy as np

from repro.core.runner import run_benchmark
from repro.workloads.data import synthetic_image
from repro.workloads.jpeg import color, dct, huffman, quant
from repro.workloads.jpeg.programs import JpegParameters
from repro.workloads.suite import SuiteParameters, build_benchmark


def functional_pipeline() -> None:
    print("=== functional JPEG encoder kernels (64x64 synthetic image) ===")
    image = synthetic_image(64, 64, channels=3, seed=11)

    # colour conversion in all three ISA flavours
    reference = color.rgb_to_ycc_reference(image)
    planar = tuple(image[..., channel].ravel() for channel in range(3))
    usimd_result = color.rgb_to_ycc_usimd(planar)
    vector_result = color.rgb_to_ycc_vector(planar)
    assert all(np.array_equal(a, b) for a, b in zip(usimd_result, vector_result))
    assert np.array_equal(usimd_result[0], reference[..., 0].ravel())
    print("colour conversion: scalar, µSIMD and vector versions agree exactly")

    # forward DCT + quantisation + entropy coding of the luminance plane
    luma = reference[..., 0]
    coefficients = dct.forward_dct_image(luma)
    quantised = quant.quantize_reference(coefficients, quant.LUMINANCE_QTABLE)
    assert np.array_equal(quant.quantize_vector(coefficients, quant.LUMINANCE_QTABLE),
                          quantised)

    writer = huffman.BitWriter()
    for by in range(0, 64, 8):
        for bx in range(0, 64, 8):
            huffman.encode_block(quantised[by:by + 8, bx:bx + 8], writer)
    bitstream = writer.getvalue()
    print(f"entropy coder: {luma.size} luminance samples -> {len(bitstream)} bytes "
          f"({8 * len(bitstream) / luma.size:.2f} bits/pixel)")

    reader = huffman.BitReader(bitstream)
    decoded = np.zeros_like(quantised)
    for by in range(0, 64, 8):
        for bx in range(0, 64, 8):
            decoded[by:by + 8, bx:bx + 8] = huffman.decode_block(reader)
    assert np.array_equal(decoded, quantised)
    restored = dct.inverse_dct_image(quant.dequantize_reference(decoded,
                                                                quant.LUMINANCE_QTABLE))
    error = np.abs(restored.astype(int) - luma.astype(int)).mean()
    print(f"bit-stream round-trips exactly; reconstruction error {error:.2f} "
          "grey levels (quantisation loss only)")


def architectural_comparison() -> None:
    print("\n=== jpeg_enc timing model across machine configurations ===")
    params = SuiteParameters(jpeg=JpegParameters(width=48, height=48))
    spec = build_benchmark("jpeg_enc", params)
    configs = ["vliw-2w", "vliw-8w", "usimd-2w", "usimd-8w", "vector2-2w", "vector2-4w"]
    result = run_benchmark(spec, config_names=configs)
    baseline = result["vliw-2w"]
    print(f"{'config':12s} {'cycles':>10s} {'speed-up':>9s} {'vector-region share':>20s}")
    for name in configs:
        stats = result[name]
        print(f"{name:12s} {stats.total_cycles:10d} "
              f"{stats.speedup_over(baseline):9.2f} "
              f"{100 * stats.vectorization_fraction:19.1f}%")
    print("\nNote how the vector configurations shrink the vector regions to a small\n"
          "fraction of the runtime, leaving the scalar (entropy-coding) part as the\n"
          "bottleneck — the Amdahl argument of the paper's §5.2.")


def main() -> None:
    functional_pipeline()
    architectural_comparison()


if __name__ == "__main__":
    main()
