#!/usr/bin/env python
"""Design-space exploration beyond the paper's ten configurations.

The paper fixes four vector lanes, a 4×64-bit vector-cache port, two cache
banks and at most four vector units.  The :mod:`repro.explore` subsystem
opens those axes: it generates parameterised machine configurations, sweeps
them through the experiment engine (resumably, via the persistent result
store) and reports Pareto frontiers of speed-up against issue slots — the
kind of follow-on study the paper's conclusions invite (its stated future
work is the memory hierarchy).

Run with::

    python examples/design_space.py                  # 8-point smoke space
    python examples/design_space.py --full           # the 108-point space
    python examples/design_space.py --store .repro-store   # resumable

(The ``python -m repro explore`` CLI is the full-featured version of this
example.)
"""

import argparse

from repro.explore import DesignSpace, run_exploration
from repro.store import ResultStore
from repro.workloads.suite import SuiteParameters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="sweep the 108-point default space instead of "
                             "the 8-point smoke space")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persist results (re-runs skip stored points)")
    args = parser.parse_args()

    space = DesignSpace.default() if args.full else DesignSpace.smoke()
    result = run_exploration(
        space=space,
        benchmarks=("gsm_enc", "jpeg_enc"),
        parameters=SuiteParameters.tiny(),
        store=ResultStore(args.store) if args.store else None,
        progress=print,
    )
    print()
    print(result.summary())
    best = result.frontier()[-1]
    print(f"\nTakeaway: the frontier flattens quickly — {best.name} tops out"
          f"\nat {best.value:.2f}x for {best.cost:.0f} issue slots, matching"
          " the paper's claim that"
          "\n'a larger number of lanes would not pay off' for these short"
          " vector kernels.")


if __name__ == "__main__":
    main()
