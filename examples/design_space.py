#!/usr/bin/env python
"""Design-space exploration beyond the paper's ten configurations.

The paper fixes four vector lanes, a 4×64-bit vector-cache port and a
5-cycle vector cache.  This example sweeps those choices on the gsm_enc and
jpeg_enc vector regions to show where the returns diminish — the kind of
follow-on study the paper's conclusions invite (its stated future work is
the memory hierarchy).

Run with::

    python examples/design_space.py
"""

from dataclasses import replace

from repro import ISAFlavor, VectorMicroSimdVliwMachine
from repro.machine.config import get_config
from repro.machine.latency import LatencyModel
from repro.workloads.jpeg.programs import JpegParameters, build_jpeg_enc_program
from repro.workloads.gsm.programs import GsmParameters, build_gsm_enc_program


def build_programs():
    return {
        "jpeg_enc": build_jpeg_enc_program(ISAFlavor.VECTOR,
                                           JpegParameters(width=32, height=32)),
        "gsm_enc": build_gsm_enc_program(ISAFlavor.VECTOR, GsmParameters(frames=1)),
    }


def sweep_vector_lanes(programs) -> None:
    print("=== vector lanes (paper uses 4) ===")
    base = get_config("vector2-2w")
    for lanes in (1, 2, 4, 8):
        config = replace(base, vector_lanes=lanes)
        machine = VectorMicroSimdVliwMachine(config)
        cells = []
        for name, program in programs.items():
            stats = machine.run(program)
            cells.append(f"{name}: {stats.vector_region_cycles:8d} cycles")
        print(f"  {lanes} lanes   " + "   ".join(cells))


def sweep_l2_port(programs) -> None:
    print("\n=== L2 vector-cache port width (paper uses 4 x 64-bit) ===")
    base = get_config("vector2-2w")
    for words in (1, 2, 4, 8):
        config = replace(base, l2_port_words=words)
        machine = VectorMicroSimdVliwMachine(config)
        cells = []
        for name, program in programs.items():
            stats = machine.run(program)
            cells.append(f"{name}: {stats.vector_region_cycles:8d} cycles")
        print(f"  {words} words   " + "   ".join(cells))


def sweep_vector_cache_latency(programs) -> None:
    print("\n=== vector-cache latency (paper uses 5 cycles) ===")
    for latency in (3, 5, 9, 15):
        model = LatencyModel().with_overrides(vector_load=latency, vector_store=latency)
        machine = VectorMicroSimdVliwMachine(get_config("vector2-2w"),
                                             latency_model=model)
        cells = []
        for name, program in programs.items():
            stats = machine.run(program)
            cells.append(f"{name}: {stats.vector_region_cycles:8d} cycles")
        print(f"  {latency:2d} cycles " + "   ".join(cells))


def main() -> None:
    programs = build_programs()
    sweep_vector_lanes(programs)
    sweep_l2_port(programs)
    sweep_vector_cache_latency(programs)
    print("\nTakeaway: with the short vector lengths of these kernels, four lanes"
          "\nand a 4-word port already capture most of the benefit, matching the"
          "\npaper's claim that 'a larger number of lanes would not pay off'.")


if __name__ == "__main__":
    main()
