#!/usr/bin/env python
"""Register a custom benchmark and run it like a shipped one.

The workload registry (:mod:`repro.workloads.registry`) is the SDK for
extending the benchmark suite — ``docs/workloads.md`` is the guide this
example condenses.  We register a *stereo downmix* kernel (a streaming
element-wise average of two int16 channels), then drive it through the
exact machinery the paper's six applications use: ``build_benchmark``,
the experiment engine (with a worker pool, to show that user
registrations ride along to workers), and the registry-aware CLI
selectors.

Run with::

    python examples/custom_workload.py
"""

from dataclasses import dataclass

from repro.compiler.builder import KernelBuilder
from repro.compiler.ir import ISAFlavor
from repro.core.runner import execute_requests
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace
from repro.sim.plan import RunRequest
from repro.workloads import common
from repro.workloads.registry import register_workload, workload_names
from repro.workloads.suite import SuiteParameters, build_benchmark


@dataclass(frozen=True)
class StereoMixParameters:
    """Input geometry of the custom benchmark (frozen, like all families)."""

    samples: int = 4096

    def __post_init__(self) -> None:
        if self.samples < 32 or self.samples % 32:
            raise ValueError("samples must be a positive multiple of 32")


#: per-element downmix work: the add, the rounding add and the shift
_MIX_SCALAR = ((Opcode.ADD, 2), (Opcode.SHR, 1))
_MIX_PACKED = ((Opcode.PADDW, 2), (Opcode.PSHIFT, 1))
_MIX_VECTOR = ((Opcode.VADDW, 2), (Opcode.VSHIFT, 1))


# The decorator publishes the definition; the builder stays an ordinary
# module-level function (module-level matters: definitions are pickled to
# pool workers, which re-register them on initialisation).
@register_workload("stereo_mix", family="stereo", params=StereoMixParameters,
                   tiny=StereoMixParameters(samples=256),
                   description="Stereo downmix: element-wise average of two "
                               "int16 channels",
                   tags=("example", "streaming"))
def build_stereo_mix_program(flavor: ISAFlavor,
                             params: StereoMixParameters = StereoMixParameters()):
    """The kernel program (timing model) in the requested ISA flavour."""
    space = AddressSpace()
    left = space.allocate("left", (1, params.samples), element_bytes=2)
    right = space.allocate("right", (1, params.samples), element_bytes=2)
    mono = space.allocate("mono", (1, params.samples), element_bytes=2)

    builder = KernelBuilder("stereo_mix", flavor, address_space=space)
    with builder.region("R1", "Stereo downmix", vectorizable=True):
        emit = {ISAFlavor.SCALAR: (common.emit_elementwise_scalar, _MIX_SCALAR),
                ISAFlavor.USIMD: (common.emit_elementwise_usimd, _MIX_PACKED),
                ISAFlavor.VECTOR: (common.emit_elementwise_vector, _MIX_VECTOR)}
        emitter, mix = emit[flavor]
        emitter(builder, [left, right], [mono], 1, params.samples, mix,
                element_bytes=2, label="downmix")
    return builder.program()


def main() -> None:
    print("registered benchmarks:", ", ".join(workload_names()))
    assert "stereo_mix" in workload_names()

    # sizes for a custom family travel through SuiteParameters.extras
    parameters = SuiteParameters.tiny().with_family(
        "stereo", StereoMixParameters(samples=512))
    spec = build_benchmark("stereo_mix", parameters)

    # two worker processes: the registration rides along automatically
    requests = [RunRequest("stereo_mix", config, False)
                for config in ("vliw-2w", "usimd-2w", "vector2-2w")]
    runs = execute_requests(requests, {"stereo_mix": spec}, jobs=2)

    baseline = runs[requests[0]]
    print(f"\n{'configuration':<14}{'cycles':>10}  speedup over vliw-2w")
    for request in requests:
        stats = runs[request]
        print(f"{request.config_name:<14}{stats.total_cycles:>10}  "
              f"{stats.speedup_over(baseline):.2f}x")

    print("\nTakeaway: a purely streaming element-wise kernel vectorises "
          "completely, so the\nvector machine wins on memory throughput — "
          "compare adpcm_codec, whose per-sample\nrecurrence gains almost "
          "nothing (python -m repro bench list shows both).")


if __name__ == "__main__":
    main()
