#!/usr/bin/env python
"""Quickstart: build a small vector kernel, schedule it and simulate it.

This example walks the full public API in ~50 lines:

1. allocate buffers in a simulated address space;
2. express a streaming kernel with the :class:`KernelBuilder` DSL
   (Vector-µSIMD flavour: stride-one vector loads, a few vector operations,
   vector stores);
3. build a machine from one of the paper's Table-2 configurations;
4. look at the static schedule the compiler produces;
5. run the kernel and print cycles, operations per cycle and micro-operations
   per cycle.

Run with::

    python examples/quickstart.py
"""

from repro import ISAFlavor, KernelBuilder, VectorMicroSimdVliwMachine
from repro.isa.operations import Opcode
from repro.memory.layout import AddressSpace


def build_saxpy_like_kernel(rows: int = 64, row_words: int = 16):
    """A simple streaming kernel: out[i] = saturate(a[i] * k + b[i])."""
    space = AddressSpace()
    a = space.allocate("a", (rows, row_words * 8), element_bytes=1)
    b = space.allocate("b", (rows, row_words * 8), element_bytes=1)
    out = space.allocate("out", (rows, row_words * 8), element_bytes=1)

    builder = KernelBuilder("quickstart", ISAFlavor.VECTOR, address_space=space)
    with builder.region("R1", "streaming multiply-add", vectorizable=True):
        with builder.loop(rows, name="row") as row:
            builder.setvl(row_words)
            va = builder.vload(builder.addr(a, (row, a.row_stride_bytes())),
                               vl=row_words, comment="load a row")
            vb = builder.vload(builder.addr(b, (row, b.row_stride_bytes())),
                               vl=row_words, comment="load b row")
            scaled = builder.vop(Opcode.VMULLW, va, vl=row_words, comment="a * k")
            summed = builder.vop(Opcode.VADDW, scaled, vb, vl=row_words, comment="+ b")
            builder.vstore(builder.addr(out, (row, out.row_stride_bytes())),
                           summed, vl=row_words, comment="store row")
    return builder.program()


def main() -> None:
    program = build_saxpy_like_kernel()

    machine = VectorMicroSimdVliwMachine.from_name("vector2-2w")
    print(f"machine: {machine.config.label}  "
          f"({machine.config.vector_units} vector units x "
          f"{machine.config.vector_lanes} lanes, "
          f"{machine.config.l2_port_words}x64-bit L2 port)\n")

    # the static schedule of the loop body
    body = program.segments()[0]
    print(machine.schedule_listing(body))
    print()

    # run on the three architecture families the paper compares
    for name in ("vliw-2w", "usimd-2w", "vector1-2w", "vector2-2w"):
        target = VectorMicroSimdVliwMachine.from_name(name)
        if not target.supports(program.flavor):
            print(f"{name:12s}  cannot execute the vector flavour "
                  "(it would run the scalar/µSIMD version of the kernel)")
            continue
        stats = target.run(program)
        print(f"{name:12s}  cycles={stats.total_cycles:7d}  "
              f"OPC={stats.opc:5.2f}  uOPC={stats.uopc:6.2f}  "
              f"stalls={stats.total_stall_cycles}")


if __name__ == "__main__":
    main()
