#!/usr/bin/env python
"""The paper's running example: the dist1 motion-estimation SAD kernel.

Reproduces Figure 4 and the surrounding discussion:

* the Vector-µSIMD version needs only 16 operations to process a complete
  8×16 block (the µSIMD version needs ~172, the scalar version thousands);
* the static schedule on a 2-issue Vector2 machine is ~18-20 cycles;
* the vector loads use a stride equal to the image width, so under a real
  memory system the processor stalls — the effect behind mpeg2_enc's
  degradation in Figure 5(b);
* the functional SAD kernels (scalar / µSIMD / vector) agree exactly, and an
  exhaustive search over a synthetic video recovers the true motion.

Run with::

    python examples/motion_estimation.py
"""

import numpy as np

from repro import ISAFlavor, VectorMicroSimdVliwMachine
from repro.workloads.data import synthetic_video
from repro.workloads.mpeg2.motion import (build_sad_kernel_program, full_search_reference,
                                          sad_block_reference, sad_block_usimd,
                                          sad_block_vector)


def schedule_comparison() -> None:
    print("=== static schedule (Figure 4) ===")
    machine = VectorMicroSimdVliwMachine.from_name("vector2-2w")
    for flavor in (ISAFlavor.VECTOR, ISAFlavor.USIMD, ISAFlavor.SCALAR):
        program = build_sad_kernel_program(flavor)
        print(f"{flavor.label:8s}: {program.dynamic_operation_count():5d} operations, "
              f"{program.dynamic_micro_op_count():6d} micro-operations")
    vector_program = build_sad_kernel_program(ISAFlavor.VECTOR)
    print()
    print(machine.schedule_listing(vector_program.segments()[0]))


def functional_check() -> None:
    print("\n=== functional equivalence of the three SAD implementations ===")
    rng = np.random.default_rng(42)
    current = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    candidate = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    reference = sad_block_reference(current, candidate)
    print(f"reference SAD = {reference}")
    print(f"µSIMD SAD     = {sad_block_usimd(current, candidate)}")
    print(f"vector SAD    = {sad_block_vector(current, candidate)}")


def motion_search() -> None:
    print("\n=== exhaustive search on a synthetic video ===")
    video = synthetic_video(frames=2, width=96, height=64, dx=3, dy=1)
    for mb_row, mb_col in ((16, 16), (32, 48), (16, 64)):
        (dy, dx), sad = full_search_reference(video[0], video[1], mb_row, mb_col,
                                              radius=4)
        print(f"macroblock at ({mb_row:2d},{mb_col:2d}): "
              f"best motion vector (dy={dy:+d}, dx={dx:+d}), SAD={sad}")
    print("(the synthetic sequence translates by dx=3, dy=1 per frame, so the "
          "best vectors are (-1, -3))")


def stride_sensitivity() -> None:
    print("\n=== run-time effect of the non-unit stride (Figure 5b) ===")
    program = build_sad_kernel_program(ISAFlavor.VECTOR, image_width=64)
    for perfect in (True, False):
        machine = VectorMicroSimdVliwMachine.from_name("vector2-2w",
                                                       perfect_memory=perfect)
        stats = machine.run(program)
        label = "perfect memory " if perfect else "realistic memory"
        print(f"{label}: {stats.total_cycles:4d} cycles "
              f"({stats.total_stall_cycles} stall cycles)")


def main() -> None:
    schedule_comparison()
    functional_check()
    motion_search()
    stride_sensitivity()


if __name__ == "__main__":
    main()
